"""Technology sensitivity of the halo's advantage.

The halo wins because wires are slow relative to the core and the memory
is far; both are technology parameters. This experiment sweeps them:

* **memory latency** -- with much faster (or slower) off-chip memory, how
  does the Design-F-over-Design-A IPC ratio move? (Slower memory dilutes
  the on-chip advantage for miss-heavy mixes; faster memory amplifies
  the hit-path win.)
* **wire delay** -- scaling every Table-1 wire delay by k models worse
  (or better) global wires; the halo's short MRU paths should matter
  *more* as wires get worse, which is the paper's underlying bet on
  technology scaling ("increasing wire delays ... lead to various
  technologies to minimize the impact of slow on-chip communication").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import config as repro_config
from repro.core.system import NetworkedCacheSystem
from repro.experiments.common import ExperimentConfig, geometric_mean
from repro.workloads.generator import TraceGenerator
from repro.workloads.profiles import profile_by_name

BENCHMARKS = ("art", "twolf", "mcf")
SCHEME = "multicast+fast_lru"


@dataclass(frozen=True)
class SensitivityPoint:
    parameter: str
    value: float
    ipc_a: float
    ipc_f: float

    @property
    def halo_ratio(self) -> float:
        return self.ipc_f / self.ipc_a


def _geomean_ipc(design: str, measure: int, seed: int) -> float:
    ipcs = []
    for name in BENCHMARKS:
        profile = profile_by_name(name)
        trace, warmup = TraceGenerator(profile, seed=seed).generate_with_warmup(
            measure=measure
        )
        system = NetworkedCacheSystem(design=design, scheme=SCHEME)
        ipcs.append(system.run(trace, profile, warmup=warmup).ipc)
    return geometric_mean(ipcs)


def memory_latency_sweep(
    config: ExperimentConfig | None = None,
    base_latencies: tuple = (60, 130, 300),
) -> list[SensitivityPoint]:
    """Sweep the off-chip base latency (Table 1 uses 130 cycles)."""
    config = config or ExperimentConfig()
    original = repro_config.MEMORY_BASE_LATENCY
    points = []
    try:
        for base in base_latencies:
            repro_config.MEMORY_BASE_LATENCY = base
            points.append(
                SensitivityPoint(
                    parameter="memory_base_latency",
                    value=base,
                    ipc_a=_geomean_ipc("A", config.measure, config.seed),
                    ipc_f=_geomean_ipc("F", config.measure, config.seed),
                )
            )
    finally:
        repro_config.MEMORY_BASE_LATENCY = original
    return points


def wire_delay_sweep(
    config: ExperimentConfig | None = None,
    scales: tuple = (1, 2, 3),
) -> list[SensitivityPoint]:
    """Scale every Table-1 wire delay by an integer factor."""
    config = config or ExperimentConfig()
    original = {
        capacity: dict(entry)
        for capacity, entry in repro_config._BANK_TIMING.items()
    }
    points = []
    try:
        for scale in scales:
            for capacity, entry in repro_config._BANK_TIMING.items():
                entry["wire"] = original[capacity]["wire"] * scale
            points.append(
                SensitivityPoint(
                    parameter="wire_delay_scale",
                    value=scale,
                    ipc_a=_geomean_ipc("A", config.measure, config.seed),
                    ipc_f=_geomean_ipc("F", config.measure, config.seed),
                )
            )
    finally:
        for capacity, entry in repro_config._BANK_TIMING.items():
            entry.update(original[capacity])
    return points


def render(points: list[SensitivityPoint], title: str) -> str:
    lines = [title, "=" * len(title),
             f"{'value':>8} {'IPC A':>8} {'IPC F':>8} {'F / A':>7}"]
    for point in points:
        lines.append(
            f"{point.value:>8.0f} {point.ipc_a:>8.3f} {point.ipc_f:>8.3f} "
            f"{point.halo_ratio:>7.2f}"
        )
    return "\n".join(lines)
