"""Table 4: area analysis of network designs A, B, E, F (plus C, D).

Reproduces the bank/router/link percentage split, the L2 area, and the
minimal chip area from the analytic models of :mod:`repro.area`.
"""

from __future__ import annotations

from repro.area.floorplan import DesignArea, FloorPlanner
from repro.core.designs import DESIGN_NAMES, design_spec
from repro.experiments.report import format_table

#: The paper's Table 4 (design -> bank %, router %, link %, L2, chip mm2).
PAPER_TABLE4 = {
    "A": (47.8, 20.8, 31.4, 567.70, 567.70),
    "B": (58.4, 13.0, 28.6, 464.60, 521.99),
    "E": (67.5, 14.1, 18.4, 402.30, 1602.22),
    "F": (78.7, 5.7, 15.7, 312.19, 517.61),
}


def run(designs: tuple = DESIGN_NAMES) -> dict[str, DesignArea]:
    planner = FloorPlanner()
    return {key: planner.design_area(design_spec(key)) for key in designs}


def interconnect_ratio(areas: dict[str, DesignArea]) -> float:
    """Design F's interconnect area relative to Design A's (paper: ~23 %)."""
    a = areas["A"]
    f = areas["F"]
    return (f.router_mm2 + f.link_mm2) / (a.router_mm2 + a.link_mm2)


def render(areas: dict[str, DesignArea]) -> str:
    rows = []
    for key, area in areas.items():
        row = area.as_row()
        rows.append(
            [
                key,
                row["bank %"],
                row["router %"],
                row["link %"],
                row["L2 area (mm2)"],
                row["chip area (mm2)"],
            ]
        )
        if key in PAPER_TABLE4:
            rows.append(["  (paper)", *PAPER_TABLE4[key]])
    table = format_table(
        ["design", "bank %", "router %", "link %", "L2 (mm2)", "chip (mm2)"],
        rows,
        title="Table 4: area analysis of network designs",
    )
    ratio = interconnect_ratio(areas)
    return (
        f"{table}\n"
        f"Design F interconnect area = {ratio:.0%} of Design A's "
        f"(paper: ~23%)"
    )
