"""Shared experiment infrastructure: configs, trace caching, runners."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.system import NetworkedCacheSystem, RunResult
from repro.workloads.generator import TraceGenerator
from repro.workloads.profiles import BENCHMARKS, profile_by_name
from repro.workloads.trace import Trace

#: Table-2 benchmark names in the paper's order.
BENCHMARK_NAMES = tuple(profile.name for profile in BENCHMARKS)


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all figure/table drivers.

    The defaults match the calibration documented in DESIGN.md; tests use
    smaller ``measure`` values for speed. Results are deterministic given
    a config.
    """

    measure: int = 10_000
    seed: int = 1
    benchmarks: tuple = BENCHMARK_NAMES
    warmup_mix_factor: float = 0.5

    def scaled(self, measure: int) -> "ExperimentConfig":
        """Same config at a different measurement length."""
        return ExperimentConfig(
            measure=measure,
            seed=self.seed,
            benchmarks=self.benchmarks,
            warmup_mix_factor=self.warmup_mix_factor,
        )


_trace_cache: dict[tuple, tuple[Trace, int]] = {}


def trace_for(benchmark: str, config: ExperimentConfig) -> tuple[Trace, int]:
    """Deterministic (trace, warmup) for a benchmark, cached per config."""
    key = (benchmark, config.measure, config.seed, config.warmup_mix_factor)
    cached = _trace_cache.get(key)
    if cached is None:
        generator = TraceGenerator(profile_by_name(benchmark), seed=config.seed)
        cached = generator.generate_with_warmup(
            measure=config.measure, mix_factor=config.warmup_mix_factor
        )
        _trace_cache[key] = cached
    return cached


_result_cache: dict[tuple, RunResult] = {}


def run_system(
    design: str,
    scheme: str,
    benchmark: str,
    config: ExperimentConfig,
) -> RunResult:
    """Build a fresh system and run one benchmark through it.

    Runs are deterministic given their arguments, so results are memoized
    per process (the figure drivers share many (design, scheme, benchmark)
    cells).
    """
    key = (design, scheme, benchmark, config)
    cached = _result_cache.get(key)
    if cached is not None:
        return cached
    profile = profile_by_name(benchmark)
    trace, warmup = trace_for(benchmark, config)
    system = NetworkedCacheSystem(design=design, scheme=scheme)
    result = system.run(trace, profile, warmup=warmup)
    _result_cache[key] = result
    return result


def geometric_mean(values: list[float]) -> float:
    """Geometric mean (0 if any value is non-positive)."""
    if not values or any(v <= 0 for v in values):
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


@dataclass
class SchemeSummary:
    """Per-scheme aggregate over all benchmarks (used by Fig. 7/8)."""

    scheme: str
    per_benchmark: dict[str, RunResult] = field(default_factory=dict)

    def mean_latency(self) -> float:
        values = [r.average_latency for r in self.per_benchmark.values()]
        return sum(values) / len(values) if values else 0.0

    def mean_hit_latency(self) -> float:
        values = [r.average_hit_latency for r in self.per_benchmark.values()]
        return sum(values) / len(values) if values else 0.0

    def mean_miss_latency(self) -> float:
        values = [
            r.average_miss_latency
            for r in self.per_benchmark.values()
            if r.latency.miss_count
        ]
        return sum(values) / len(values) if values else 0.0

    def geomean_ipc(self) -> float:
        return geometric_mean([r.ipc for r in self.per_benchmark.values()])
