"""Shared experiment infrastructure: configs, trace caching, runners."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.system import RunResult
from repro.workloads.profiles import BENCHMARKS
from repro.workloads.trace import Trace

#: Table-2 benchmark names in the paper's order.
BENCHMARK_NAMES = tuple(profile.name for profile in BENCHMARKS)


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all figure/table drivers.

    The defaults match the calibration documented in DESIGN.md; tests use
    smaller ``measure`` values for speed. Results are deterministic given
    a config.
    """

    measure: int = 10_000
    seed: int = 1
    benchmarks: tuple = BENCHMARK_NAMES
    warmup_mix_factor: float = 0.5
    #: Flit-simulation core ("object" | "array"); recorded on every
    #: CellSpec and honored wherever flit-level simulation runs.
    core: str = "object"
    #: Windowed-telemetry sample window in sim-cycles (0 = off); recorded
    #: on every CellSpec so windowed runs never share cache entries with
    #: unwindowed ones.
    window: int = 0

    def scaled(self, measure: int) -> "ExperimentConfig":
        """Same config at a different measurement length."""
        return ExperimentConfig(
            measure=measure,
            seed=self.seed,
            benchmarks=self.benchmarks,
            warmup_mix_factor=self.warmup_mix_factor,
            core=self.core,
            window=self.window,
        )


def trace_for(benchmark: str, config: ExperimentConfig) -> tuple[Trace, int]:
    """Deterministic (trace, warmup) for a benchmark, cached per config."""
    from repro.experiments import runner

    return runner._trace_with_warmup(
        runner.spec_for(benchmark=benchmark, design="A",
                        scheme="multicast+fast_lru", config=config)
    )


def run_system(
    design: str,
    scheme: str,
    benchmark: str,
    config: ExperimentConfig,
) -> RunResult:
    """Run one (design, scheme, benchmark) cell through the engine.

    Runs are deterministic given their arguments; the engine memoizes them
    per process (the figure drivers share many cells) and, when the CLI
    enables it, in the persistent on-disk result cache.
    """
    from repro.experiments import runner

    return runner.run_cells([runner.spec_for(design, scheme, benchmark, config)])[0]


def run_systems(
    cells: list[tuple[str, str, str]],
    config: ExperimentConfig,
) -> dict[tuple[str, str, str], RunResult]:
    """Evaluate a batch of (design, scheme, benchmark) cells at once.

    The preferred driver entry point: handing the whole cell list to the
    engine lets it fan independent cells over worker processes
    (``--jobs``) and consult the persistent result cache, while a lone
    :func:`run_system` loop is inherently serial.
    """
    from repro.experiments import runner

    specs = [runner.spec_for(d, s, b, config) for d, s, b in cells]
    return dict(zip(cells, runner.run_cells(specs)))


def geometric_mean(values: list[float]) -> float:
    """Geometric mean (0 if any value is non-positive)."""
    if not values or any(v <= 0 for v in values):
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


@dataclass
class SchemeSummary:
    """Per-scheme aggregate over all benchmarks (used by Fig. 7/8)."""

    scheme: str
    per_benchmark: dict[str, RunResult] = field(default_factory=dict)

    def mean_latency(self) -> float:
        values = [r.average_latency for r in self.per_benchmark.values()]
        return sum(values) / len(values) if values else 0.0

    def mean_hit_latency(self) -> float:
        values = [r.average_hit_latency for r in self.per_benchmark.values()]
        return sum(values) / len(values) if values else 0.0

    def mean_miss_latency(self) -> float:
        values = [
            r.average_miss_latency
            for r in self.per_benchmark.values()
            if r.latency.miss_count
        ]
        return sum(values) / len(values) if values else 0.0

    def geomean_ipc(self) -> float:
        return geometric_mean([r.ipc for r in self.per_benchmark.values()])
