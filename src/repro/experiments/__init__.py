"""Experiment drivers regenerating every evaluation figure and table.

Each module exposes a ``run(config)`` returning structured results plus a
``render(results)`` producing the same rows/series the paper reports:

========================  ===========================================
Module                    Paper artifact
========================  ===========================================
``table1_params``         Table 1 (system parameters, derived checks)
``table2_workloads``      Table 2 (benchmark statistics)
``fig2_hops``             Fig. 2 example (21 vs 12 hops)
``link_analysis``         Section-4 link-count formulas
``figure7``               Fig. 7 (latency split, Unicast LRU)
``figure8``               Fig. 8 (a/b/c: five replacement schemes)
``table3_designs``        Table 3 (design list)
``figure9``               Fig. 9 (normalized IPC, designs A-F)
``table4_area``           Table 4 (area analysis)
``fig10_layout``          Fig. 10 (halo floorplan geometry)
``headline``              Abstract-level combined claims
========================  ===========================================
"""

from repro.experiments.common import (
    ExperimentConfig,
    run_system,
    run_systems,
    trace_for,
)

__all__ = ["ExperimentConfig", "run_system", "run_systems", "trace_for"]
