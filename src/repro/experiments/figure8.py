"""Figure 8: L2 access latency of the five replacement schemes (Design A).

Three panels: (a) average access latency, (b) average hit latency,
(c) average miss latency, for

    unicast+promotion, unicast+lru, unicast+fast_lru,
    multicast+promotion, multicast+fast_lru

The paper's headline deltas, reproduced by :func:`summary`:

* Unicast LRU raises average latency ~4.4 % over Promotion, but Fast-LRU
  cuts it ~30 %;
* Multicast Fast-LRU cuts Unicast LRU's hit latency ~48 % and miss
  latency ~32 %, and beats Multicast Promotion by ~37 % (IPC +20 %).
"""

from __future__ import annotations

from repro.core.flows import FIGURE8_SCHEMES
from repro.experiments.common import (
    ExperimentConfig,
    SchemeSummary,
    run_systems,
)
from repro.experiments.report import format_ratio, format_table

DESIGN = "A"


def run(config: ExperimentConfig | None = None) -> dict[str, SchemeSummary]:
    config = config or ExperimentConfig()
    cells = [
        (DESIGN, scheme, benchmark)
        for scheme in FIGURE8_SCHEMES
        for benchmark in config.benchmarks
    ]
    results = run_systems(cells, config)
    summaries: dict[str, SchemeSummary] = {}
    for scheme in FIGURE8_SCHEMES:
        summary = SchemeSummary(scheme=scheme)
        for benchmark in config.benchmarks:
            summary.per_benchmark[benchmark] = results[(DESIGN, scheme, benchmark)]
        summaries[scheme] = summary
    return summaries


def summary(results: dict[str, SchemeSummary]) -> dict[str, float]:
    """The paper's headline ratios (value < 1 means 'reduced')."""
    lat = {s: results[s].mean_latency() for s in results}
    hit = {s: results[s].mean_hit_latency() for s in results}
    miss = {s: results[s].mean_miss_latency() for s in results}
    ipc = {s: results[s].geomean_ipc() for s in results}
    return {
        # unicast LRU vs unicast Promotion (paper: +4.4 %)
        "lru_vs_promotion": lat["unicast+lru"] / lat["unicast+promotion"],
        # unicast Fast-LRU vs unicast LRU (paper: -30.2 %)
        "fastlru_vs_lru": lat["unicast+fast_lru"] / lat["unicast+lru"],
        # multicast Fast-LRU vs unicast LRU (paper: -46 %)
        "mc_fastlru_vs_lru": lat["multicast+fast_lru"] / lat["unicast+lru"],
        # ... its hit latency (paper: -48 %)
        "mc_fastlru_hit_vs_lru": hit["multicast+fast_lru"] / hit["unicast+lru"],
        # ... its miss latency (paper: -32 %)
        "mc_fastlru_miss_vs_lru": miss["multicast+fast_lru"] / miss["unicast+lru"],
        # multicast Fast-LRU vs multicast Promotion (paper: -37 % latency)
        "mc_fastlru_vs_mc_promotion": (
            lat["multicast+fast_lru"] / lat["multicast+promotion"]
        ),
        # ... and its IPC gain (paper: +20 %)
        "mc_fastlru_ipc_gain": (
            ipc["multicast+fast_lru"] / ipc["multicast+promotion"]
        ),
    }


def render(results: dict[str, SchemeSummary]) -> str:
    benchmarks = list(next(iter(results.values())).per_benchmark)
    parts = []
    for panel, metric in (
        ("(a) Average Access Latency", "average_latency"),
        ("(b) Average Hit Latency", "average_hit_latency"),
        ("(c) Average Miss Latency", "average_miss_latency"),
    ):
        rows = []
        for benchmark in benchmarks:
            row = [benchmark]
            for scheme in FIGURE8_SCHEMES:
                row.append(getattr(results[scheme].per_benchmark[benchmark], metric))
            rows.append(row)
        parts.append(
            format_table(
                ["benchmark", *FIGURE8_SCHEMES],
                rows,
                title=f"Figure 8 {panel} (cycles, Design A)",
            )
        )
    ratios = summary(results)
    paper = {
        "lru_vs_promotion": "+4.4%",
        "fastlru_vs_lru": "-30.2%",
        "mc_fastlru_vs_lru": "-46%",
        "mc_fastlru_hit_vs_lru": "-48%",
        "mc_fastlru_miss_vs_lru": "-32%",
        "mc_fastlru_vs_mc_promotion": "-37%",
        "mc_fastlru_ipc_gain": "+20%",
    }
    lines = ["Headline ratios (measured vs paper):"]
    for key, value in ratios.items():
        lines.append(f"  {key:28s} {format_ratio(value):>6s}  (paper {paper[key]})")
    parts.append("\n".join(lines))
    return "\n\n".join(parts)
