"""Figure 10: the 16-spike halo floorplan with non-uniform banks.

Computes the Design-F layout geometry (tile sides growing along each
spike, die side, utilization) and renders a coarse ASCII picture of one
quadrant. The headline comparison: Design F wastes ~6x less die area than
Design E because growing banks fill the ring that uniform 64 KB tiles
leave empty.
"""

from __future__ import annotations

from repro.area.floorplan import FloorPlanner, halo_layout
from repro.core.designs import design_e, design_f
from repro.experiments.report import format_table


def run() -> dict:
    planner = FloorPlanner()
    layout_e = halo_layout(design_e, planner)
    layout_f = halo_layout(design_f, planner)
    area_e = planner.design_area(design_e)
    area_f = planner.design_area(design_f)
    waste_e = area_e.chip_mm2 - area_e.l2_mm2 - planner.core_side_mm**2
    waste_f = area_f.chip_mm2 - area_f.l2_mm2 - planner.core_side_mm**2
    return {
        "E": {"layout": layout_e, "area": area_e, "waste_mm2": waste_e},
        "F": {"layout": layout_f, "area": area_f, "waste_mm2": waste_f},
        "waste_ratio": waste_e / waste_f if waste_f > 0 else float("inf"),
    }


def render(results: dict) -> str:
    layout = results["F"]["layout"]
    rows = [
        (
            seg.position,
            f"{seg.capacity_bytes // 1024}KB",
            seg.side_mm,
            seg.start_mm,
            seg.end_mm,
        )
        for seg in layout["segments"]
    ]
    table = format_table(
        ["spike pos", "bank", "tile side (mm)", "start (mm)", "end (mm)"],
        rows,
        title="Figure 10: Design F spike geometry (all 16 spikes identical)",
    )
    lines = [
        table,
        f"die side: {layout['die_side_mm']:.1f} mm "
        f"(core {layout['core_side_mm']:.0f} mm in the center)",
        f"unused die area: E {results['E']['waste_mm2']:.0f} mm2, "
        f"F {results['F']['waste_mm2']:.0f} mm2 "
        f"-> E wastes {results['waste_ratio']:.1f}x more (paper: ~6.3x)",
        "",
        ascii_quadrant(layout),
    ]
    return "\n".join(lines)


def ascii_quadrant(layout: dict, width: int = 48) -> str:
    """Coarse ASCII rendering of one halo quadrant (hub at bottom-left)."""
    segments = layout["segments"]
    extent = layout["spike_extent_mm"]
    scale = (width - 8) / extent
    lines = ["hub |" + "".join("=" for _ in range(4)) + "> spike (MRU -> LRU)"]
    for seg in segments:
        cells = max(1, round(seg.side_mm * scale))
        label = f"{seg.capacity_bytes // 1024}K"
        body = ("[" + label.center(max(cells, len(label) + 2) - 2, "#") + "]")
        lines.append(f"  pos {seg.position}: " + body)
    return "\n".join(lines)
