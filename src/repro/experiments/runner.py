"""Parallel experiment engine: fan independent cells over worker processes.

Every figure/table driver reduces to a list of *cells* -- fully-specified,
independent simulation runs -- evaluated in a deterministic order. This
module owns that evaluation:

* a :class:`CellSpec` captures everything a run depends on as plain
  picklable fields (design, scheme, benchmark, trace parameters, and the
  model overrides the ablation/sensitivity sweeps need), so a cell can be
  executed in any process and keyed into caches;
* :func:`run_cells` evaluates a batch, deduplicating repeats, consulting
  the in-process memo and the persistent
  :class:`~repro.experiments.cache.ResultCache`, and fanning what remains
  over a ``ProcessPoolExecutor`` when ``jobs > 1``;
* if the pool dies mid-sweep (a worker OOM-killed, a broken interpreter),
  the remaining cells fall back to serial execution in-process -- a sweep
  degrades, it does not crash.

Determinism: a cell owns a fresh :class:`NetworkedCacheSystem` and a trace
generated from its own seed, so its result is a pure function of its spec.
Parallel, serial, and cached evaluations of the same spec are
bit-identical, which the engine tests assert.
"""

from __future__ import annotations

import contextlib
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Sequence

from repro import telemetry
from repro.core.system import NetworkedCacheSystem, RunResult
from repro.errors import ConfigurationError
from repro.experiments.cache import ResultCache

if TYPE_CHECKING:
    from repro.experiments.common import ExperimentConfig
    from repro.workloads.trace import Trace

#: Default worker-trace cache bound (traces are the expensive shared input).
_TRACE_CACHE_MAX = 64


@dataclass(frozen=True, slots=True)
class CellSpec:
    """One independent simulation cell, as plain picklable data.

    The first three fields are the paper's (design, scheme, benchmark)
    coordinates; the rest pin down the trace and every model override the
    sweeps use, so equal specs always produce bit-identical results.
    """

    design: str
    scheme: str
    benchmark: str
    measure: int
    seed: int
    warmup_mix_factor: float = 0.5
    #: IssueModel overlap knob (issue-model ablation).
    hide_cycles: int = 0
    #: Set-sampling width override (sampling ablation); None = generator default.
    index_space: int | None = None
    #: Halo spike issue-queue depth (spike-queue ablation).
    spike_queue_entries: int = 2
    #: Router pipeline override (router ablation); None = design default.
    single_cycle_router: bool | None = None
    #: Off-chip base latency override (memory sensitivity); None = Table 1.
    memory_base_latency: int | None = None
    #: Scale factor on every Table-1 bank wire delay (wire sensitivity).
    wire_delay_scale: int | None = None
    #: Spike wire-delay scale on a rebuilt uniform halo (spiral ablation).
    spike_wire_scale: int | None = None
    #: Partial-tag early miss detection (D-NUCA smart search).
    early_miss_detection: bool = False
    #: Fault-injection rates (repro.faults); all-zero means the pristine
    #: build path runs untouched and results stay bit-identical to it.
    link_fault_rate: float = 0.0
    bank_fault_rate: float = 0.0
    transient_fault_rate: float = 0.0
    fault_seed: int = 0
    #: Flit-simulation core selector ("object" | "array"). Sweep cells run
    #: on the transaction-level model either way, so results are identical
    #: by construction; the selector is recorded here so provenance captures
    #: it and flit-level consumers (oracle legs, protocol validation,
    #: benches) honor it.
    core: str = "object"
    #: Windowed-telemetry sample window in sim-cycles (0 = off). Part of
    #: the cache key: windowed cells carry extra Series metrics in their
    #: snapshots, so they must never replay from unwindowed entries.
    window: int = 0

    @property
    def has_faults(self) -> bool:
        return (
            self.link_fault_rate > 0.0
            or self.bank_fault_rate > 0.0
            or self.transient_fault_rate > 0.0
        )

    def key(self) -> tuple[object, ...]:
        """Stable cache key: field names and values in declaration order."""
        return ("cell",) + tuple(
            (f.name, getattr(self, f.name)) for f in fields(self)
        )


def spec_for(
    design: str,
    scheme: str,
    benchmark: str,
    config: ExperimentConfig,
    **overrides: Any,
) -> CellSpec:
    """Build a :class:`CellSpec` from an
    :class:`~repro.experiments.common.ExperimentConfig`, normalizing the
    scheme name so aliases share cache entries."""
    from repro.core.flows import make_scheme
    from repro.noc.network import normalize_core

    overrides.setdefault("core", getattr(config, "core", "object"))
    overrides["core"] = normalize_core(overrides["core"])
    overrides.setdefault("window", int(getattr(config, "window", 0)))
    return CellSpec(
        design=design,
        scheme=make_scheme(scheme).name,
        benchmark=benchmark,
        measure=config.measure,
        seed=config.seed,
        warmup_mix_factor=config.warmup_mix_factor,
        **overrides,
    )


# -- cell execution (must stay top-level: workers pickle by reference) -------

_TraceKey = tuple[str, int, int, float, int | None]

_worker_traces: dict[_TraceKey, tuple[Trace, int]] = {}


def _trace_with_warmup(spec: CellSpec) -> tuple[Trace, int]:
    """Deterministic (trace, warmup) for a spec, memoized per process."""
    from repro.workloads.generator import TraceGenerator
    from repro.workloads.profiles import profile_by_name

    key: _TraceKey = (
        spec.benchmark,
        spec.measure,
        spec.seed,
        spec.warmup_mix_factor,
        spec.index_space,
    )
    cached = _worker_traces.get(key)
    if cached is None:
        profile = profile_by_name(spec.benchmark)
        kwargs: dict[str, int] = (
            {} if spec.index_space is None else {"index_space": spec.index_space}
        )
        generator = TraceGenerator(profile, seed=spec.seed, **kwargs)
        cached = generator.generate_with_warmup(
            measure=spec.measure, mix_factor=spec.warmup_mix_factor
        )
        if len(_worker_traces) >= _TRACE_CACHE_MAX:
            _worker_traces.clear()  # repro: allow[proc-worker-global-write] -- bounded memo of pure-function-of-key traces; evicting never changes any value
        _worker_traces[key] = cached  # repro: allow[proc-worker-global-write] -- memo write: the value is a pure function of the key, so per-process copies cannot diverge
    return cached


def trace_with_warmup(spec: CellSpec) -> tuple[Trace, int]:
    """Public accessor for a spec's deterministic ``(trace, warmup)``.

    The differential oracle replays exactly the trace a cell ran, so it
    shares the per-process memo with :func:`execute_cell`.
    """
    return _trace_with_warmup(spec)


@contextlib.contextmanager
def _model_overrides(spec: CellSpec) -> Iterator[None]:
    """Apply the spec's global model overrides, restoring them on exit."""
    from repro import config as repro_config

    if spec.memory_base_latency is None and spec.wire_delay_scale is None:
        yield
        return
    original_memory = repro_config.MEMORY_BASE_LATENCY
    original_wires = {
        capacity: entry["wire"]
        for capacity, entry in repro_config._BANK_TIMING.items()
    }
    try:
        if spec.memory_base_latency is not None:
            repro_config.MEMORY_BASE_LATENCY = spec.memory_base_latency  # repro: allow[proc-worker-global-write] -- spec-derived override, restored in the finally below; cells run strictly serially within a worker process
        if spec.wire_delay_scale is not None:
            for capacity, entry in repro_config._BANK_TIMING.items():
                entry["wire"] = original_wires[capacity] * spec.wire_delay_scale
        yield
    finally:
        repro_config.MEMORY_BASE_LATENCY = original_memory  # repro: allow[proc-worker-global-write] -- restores the saved pristine value on every exit path
        for capacity, entry in repro_config._BANK_TIMING.items():
            entry["wire"] = original_wires[capacity]


def _build_system(spec: CellSpec) -> NetworkedCacheSystem:
    from repro.config import RouterConfig

    router_config = None
    if spec.single_cycle_router is not None:
        router_config = RouterConfig(single_cycle=spec.single_cycle_router)
    system = NetworkedCacheSystem(
        design=spec.design,
        scheme=spec.scheme,
        router_config=router_config,
        spike_queue_entries=spec.spike_queue_entries,
        early_miss_detection=spec.early_miss_detection,
        window=spec.window,
    )
    if spec.spike_wire_scale is not None:
        _rebuild_uniform_halo(system, spec.spike_wire_scale)
    if spec.has_faults:
        _apply_faults(system, spec)
    return system


def _apply_faults(system: NetworkedCacheSystem, spec: CellSpec) -> None:
    """Swap the pristine geometry for a degraded one under a sampled plan.

    Samples a :class:`~repro.faults.models.FaultPlan` from the spec's
    rates and fault seed, rebuilds the geometry as a proof-checked
    :class:`~repro.faults.recovery.DegradedCacheGeometry` (columns
    truncated to their live prefixes), and rebuilds the content array and
    transaction engine on top of it -- the same rebuild discipline as
    :func:`_rebuild_uniform_halo`.
    """
    from repro.cache.array import CacheArray
    from repro.core.flows import TransactionEngine
    from repro.faults.models import FaultPlan
    from repro.faults.recovery import DegradedCacheGeometry

    topology = system.geometry.topology
    plan = FaultPlan.sample(
        topology,
        link_rate=spec.link_fault_rate,
        bank_rate=spec.bank_fault_rate,
        transient_rate=spec.transient_fault_rate,
        seed=spec.fault_seed,
    )
    geometry = DegradedCacheGeometry(
        topology,
        system.geometry.columns,
        plan,
        seed=spec.fault_seed,
        router_config=system.geometry.router_config,
        spike_queue_entries=spec.spike_queue_entries,
    )
    system.geometry = geometry
    system.array = CacheArray(
        geometry.columns, system.scheme.policy, system.mapper
    )
    system.memory.channel.floor_clock = geometry.floor_clock
    system.engine = TransactionEngine(geometry, system.memory, system.scheme)


def _rebuild_uniform_halo(system: NetworkedCacheSystem, wire_scale: int) -> None:
    """Swap in the spiral-spike ablation's uniform 16x16 halo geometry."""
    from repro.cache.bank import bank_descriptors_for_column
    from repro.core.flows import TransactionEngine
    from repro.core.geometry import CacheGeometry
    from repro.noc.topology import HaloTopology

    topology = HaloTopology(
        16,
        16,
        position_bank_capacities=[64 * 1024] * 16,
        memory_pin_delay=16,
        wire_delay_scale=wire_scale,
    )
    columns = [bank_descriptors_for_column([64 * 1024] * 16) for _ in range(16)]
    system.geometry = CacheGeometry(topology, columns)
    system.memory.channel.floor_clock = system.geometry.floor_clock
    system.engine = TransactionEngine(system.geometry, system.memory, system.scheme)


def _execute_cell_spec(spec: CellSpec) -> RunResult:
    """Run one trace-replay cell from scratch (no caches)."""
    from repro.workloads.profiles import profile_by_name

    profile = profile_by_name(spec.benchmark)
    trace, warmup = _trace_with_warmup(spec)
    started = time.perf_counter()
    with _model_overrides(spec):
        system = _build_system(spec)
        result = system.run(
            trace, profile, warmup=warmup, hide_cycles=spec.hide_cycles
        )
    result.wall_s = time.perf_counter() - started
    result.provenance = telemetry.provenance_block(spec)
    return result


#: Executors for additional spec families (e.g. repro.stream's
#: ``StreamSpec``), keyed by exact spec type. Registration happens at the
#: spec module's import time, so worker processes pick it up simply by
#: unpickling a spec (unpickling imports its defining module).
_spec_executors: dict[type, Callable[[Any], Any]] = {}


def register_spec_executor(
    spec_type: type, executor: Callable[[Any], Any]
) -> None:
    """Register *executor* as the from-scratch runner for *spec_type*.

    The spec type must be a frozen picklable dataclass exposing the
    ``design``/``scheme``/``benchmark``/``seed`` reporting coordinates
    and a stable ``key()`` for the persistent cache, and the executor a
    top-level function returning a result whose optional ``metrics``
    snapshot merges into the global registry (like ``RunResult``).
    """
    _spec_executors[spec_type] = executor


def execute_cell(spec: Any) -> Any:
    """Run one cell from scratch (no caches). Top-level and picklable."""
    if type(spec) is CellSpec:
        return _execute_cell_spec(spec)
    executor = _spec_executors.get(type(spec))
    if executor is None:
        raise ConfigurationError(
            f"no executor registered for spec type {type(spec).__name__}; "
            "import its defining module before run_cells"
        )
    return executor(spec)


# -- engine configuration ----------------------------------------------------


@dataclass
class EngineSettings:
    """Process-wide defaults for :func:`run_cells` (set by the CLI)."""

    jobs: int = 1
    cache: ResultCache | None = None


_settings = EngineSettings()

#: In-process memo: spec -> result (the figure drivers share many cells).
#: Keyed by any registered spec family, not just CellSpec.
_memo: dict[Any, Any] = {}


def configure(
    jobs: int | None = None,
    use_cache: bool | None = None,
    cache_dir: str | None = None,
) -> EngineSettings:
    """Set the process-wide engine defaults; returns the live settings.

    ``jobs <= 0`` means "use every core". ``use_cache=True`` attaches a
    persistent :class:`ResultCache` (at *cache_dir* when given);
    ``use_cache=False`` detaches it.
    """
    if jobs is not None:
        _settings.jobs = jobs if jobs > 0 else (os.cpu_count() or 1)
    if use_cache is not None:
        if use_cache:
            _settings.cache = (
                ResultCache(directory=cache_dir) if cache_dir else ResultCache()
            )
        else:
            _settings.cache = None
    elif cache_dir is not None and _settings.cache is not None:
        _settings.cache = ResultCache(directory=cache_dir)
    return _settings


def settings() -> EngineSettings:
    return _settings


def reset_memo() -> None:
    """Forget in-process results (tests; long-lived sessions)."""
    _memo.clear()
    _worker_traces.clear()
    _journal.clear()


# -- batch reporting ---------------------------------------------------------


@dataclass(frozen=True)
class CellReport:
    """Where one unique cell's result came from, and what it cost."""

    design: str
    scheme: str
    benchmark: str
    seed: int
    #: ``memo`` (in-process), ``cache`` (persistent), or ``computed``.
    source: str
    #: Wall seconds of the original computation (stamped by execute_cell;
    #: replayed results carry the time their producer spent).
    wall_s: float | None

    def payload(self) -> dict[str, object]:
        return {
            "design": self.design,
            "scheme": self.scheme,
            "benchmark": self.benchmark,
            "seed": self.seed,
            "source": self.source,
            "wall_s": self.wall_s,
        }


@dataclass
class BatchReport:
    """Accounting for one :func:`run_cells` batch."""

    total: int
    unique: int
    memo_hits: int
    cache_hits: int
    computed: int
    wall_s: float
    cells: list[CellReport] = field(default_factory=list)

    @property
    def cached(self) -> int:
        return self.memo_hits + self.cache_hits

    def summary(self) -> str:
        return f"{self.total} cells: {self.cached} cached, {self.computed} computed"

    def payload(self) -> dict[str, Any]:
        return {
            "total": self.total,
            "unique": self.unique,
            "memo_hits": self.memo_hits,
            "cache_hits": self.cache_hits,
            "computed": self.computed,
            "wall_s": self.wall_s,
            "cells": [cell.payload() for cell in self.cells],
        }


#: Per-process journal of every batch this process has run.
_journal: list[BatchReport] = []


def last_batch() -> BatchReport | None:
    """Report of the most recent :func:`run_cells` batch (None = none yet)."""
    return _journal[-1] if _journal else None


def journal_payload() -> list[dict[str, Any]]:
    """The full batch journal as JSON-able dicts."""
    return [report.payload() for report in _journal]


# -- the runner --------------------------------------------------------------

_UNSET = object()


def run_cells(
    specs: Sequence[Any],
    jobs: int | None = None,
    cache: ResultCache | None | object = _UNSET,
    progress: Callable[[int, int], None] | None = None,
) -> list[Any]:
    """Evaluate *specs* and return their results in input order.

    Repeated specs are evaluated once. Results come from, in order: the
    in-process memo, the persistent cache, then execution -- parallel
    across ``jobs`` worker processes when ``jobs > 1`` and more than one
    cell remains, serial otherwise. Worker results are committed in the
    deterministic submission order, so the memo, the cache, and the
    returned list are identical however the pool schedules.

    *progress*, when given, is called with ``(completed, total)`` counts
    after each fresh cell execution.
    """
    if jobs is None:
        jobs = _settings.jobs
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    if cache is _UNSET:
        cache = _settings.cache
    batch_started = time.perf_counter()

    unique: list[Any] = []
    seen: set[Any] = set()
    for spec in specs:
        if spec not in seen:
            seen.add(spec)
            unique.append(spec)

    sources: dict[Any, str] = {}
    todo: list[Any] = []
    for spec in unique:
        if spec in _memo:
            sources[spec] = "memo"
            continue
        if cache is not None:
            hit = cache.get(spec.key())
            if hit is not None:
                _memo[spec] = hit
                sources[spec] = "cache"
                continue
        sources[spec] = "computed"
        todo.append(spec)

    if todo:
        executed = 0

        def commit(spec: Any, result: Any) -> None:
            nonlocal executed
            _memo[spec] = result
            if cache is not None:
                cache.put(spec.key(), result)
            executed += 1
            if progress is not None:
                progress(executed, len(todo))

        remaining = todo
        if jobs > 1 and len(todo) > 1:
            remaining = _run_pool(todo, min(jobs, len(todo)), commit)
        for spec in remaining:
            commit(spec, execute_cell(spec))

    # Fold each unique cell's metrics into the process-global registry in
    # deterministic (first-appearance) order -- identical whether results
    # came from workers, the memo, or the persistent cache.
    for spec in unique:
        telemetry.merge_run(_memo[spec])

    _journal.append(
        BatchReport(
            total=len(specs),
            unique=len(unique),
            memo_hits=sum(1 for s in sources.values() if s == "memo"),
            cache_hits=sum(1 for s in sources.values() if s == "cache"),
            computed=len(todo),
            wall_s=time.perf_counter() - batch_started,
            cells=[
                CellReport(
                    design=spec.design,
                    scheme=spec.scheme,
                    benchmark=spec.benchmark,
                    seed=spec.seed,
                    source=sources[spec],
                    wall_s=getattr(_memo[spec], "wall_s", None),
                )
                for spec in unique
            ],
        )
    )

    return [_memo[spec] for spec in specs]


def _run_pool(
    todo: list[Any],
    jobs: int,
    commit: Callable[[Any, Any], None],
) -> list[Any]:
    """Fan *todo* over a process pool; returns cells still unevaluated.

    Futures are drained in submission order so results commit
    deterministically. A broken pool (killed worker, failed interpreter
    spawn) returns the unfinished tail for the serial fallback instead of
    raising; genuine simulation errors propagate unchanged.
    """
    try:
        executor = ProcessPoolExecutor(max_workers=jobs)
    except OSError:
        return todo
    with executor:
        try:
            futures = [(spec, executor.submit(execute_cell, spec)) for spec in todo]
        except (BrokenProcessPool, OSError, RuntimeError):
            return todo
        for i, (spec, future) in enumerate(futures):
            try:
                result = future.result()
            except (BrokenProcessPool, OSError):
                # The pool died under us: everything not yet committed
                # re-runs serially in this process.
                return [spec for spec, _ in futures[i:]]
            commit(spec, result)
    return []


def run_grid(
    designs: Iterable[str],
    schemes: Iterable[str],
    benchmarks: Iterable[str],
    config: ExperimentConfig,
    **kwargs: Any,
) -> dict[tuple[str, str, str], RunResult]:
    """Evaluate the full (design, scheme, benchmark) cross product.

    Returns a dict keyed by the coordinate triple, in deterministic
    row-major order (designs outermost, benchmarks innermost).
    """
    coords = [
        (design, scheme, benchmark)
        for design in designs
        for scheme in schemes
        for benchmark in benchmarks
    ]
    specs = [spec_for(d, s, b, config) for d, s, b in coords]
    results = run_cells(specs, **kwargs)
    return dict(zip(coords, results))
