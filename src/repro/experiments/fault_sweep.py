"""Fault-rate sweep: availability, goodput, and latency degradation.

Not a paper artifact -- a resilience extension (DESIGN.md §11). The sweep
drives :mod:`repro.faults.campaign` through the standard experiment
engine and renders one curve row per (design, scheme, rate): how much
fault pressure the fabric absorbs through degraded-mode reroutes and
end-to-end retries before capacity truncation and retry stalls show up
as latency degradation.
"""

from __future__ import annotations

from repro.experiments.report import format_table
from repro.faults.campaign import (
    CampaignConfig,
    CampaignResult,
    run_campaign,
)


def run(config: CampaignConfig | None = None) -> CampaignResult:
    return run_campaign(config)


def render(result: CampaignResult) -> str:
    rows = []
    for point in result.points:
        rows.append(
            [
                point.design,
                point.scheme,
                f"{point.rate:g}",
                point.accesses,
                f"{point.availability:.1%}",
                f"{point.goodput:.2f}",
                f"{point.average_latency:.1f}",
                f"x{point.latency_degradation:.2f}",
                point.faults_injected,
                point.rerouted_packets,
                point.retries,
                point.exhausted_retries,
            ]
        )
    table = format_table(
        [
            "design",
            "scheme",
            "rate",
            "accesses",
            "avail",
            "goodput/kcyc",
            "avg lat",
            "lat degr",
            "faults",
            "rerouted",
            "retries",
            "exhausted",
        ],
        rows,
        title=(
            f"Fault sweep: benchmark {result.config.benchmark}, "
            f"fault seed {result.config.fault_seed}"
        ),
    )
    note = (
        "availability = accesses completing within the retry budget; "
        "latency degradation is vs the same (design, scheme) at rate 0"
    )
    return f"{table}\n\n{note}"
