"""Table 1: system parameters, echoed from the configuration plus the
derived quantities the rest of the system consumes (packet flit counts,
memory block latency, per-bank wire delays from the RC model).

Regenerating this table is a consistency check: the wire-delay column is
*recomputed* from the first-order RC model and the Cacti-style tile sizes
rather than copied, and must land on Table 1's 1/2/2/3 cycles.
"""

from __future__ import annotations

from repro import config
from repro.area.floorplan import FloorPlanner
from repro.area.wire import WireModel
from repro.experiments.report import format_table


def run() -> dict:
    wire = WireModel()
    planner = FloorPlanner()
    banks = []
    for capacity in config.supported_bank_capacities():
        timing = config.BankTiming.for_capacity(capacity)
        tile = planner.tile_side(capacity, 3)
        banks.append(
            {
                "capacity": capacity,
                "table1_wire_delay": timing.wire_delay,
                "model_wire_delay": wire.cycles(tile),
                "tag_latency": timing.tag_latency,
                "tag_replace_latency": timing.tag_replace_latency,
                "tile_side_mm": tile,
            }
        )
    return {
        "block_size": config.BLOCK_SIZE_BYTES,
        "memory_latency": config.memory_access_latency(),
        "flit_size_bits": config.FLIT_SIZE_BITS,
        "flit_buffer": config.FLIT_BUFFER_DEPTH,
        "vcs_per_pc": config.VCS_PER_PC,
        "control_packet_flits": config.packet_flits(False),
        "data_packet_flits": config.packet_flits(True),
        "banks": banks,
    }


def render(params: dict) -> str:
    header = "\n".join(
        [
            "Table 1: system parameters",
            f"  block size: {params['block_size']} B",
            f"  memory latency (64 B block): {params['memory_latency']} cycles "
            f"(130 + 4/8B)",
            f"  flit: {params['flit_size_bits']} bits; "
            f"{params['vcs_per_pc']} VCs x {params['flit_buffer']} flits per PC",
            f"  packets: control {params['control_packet_flits']} flit, "
            f"block {params['data_packet_flits']} flits",
        ]
    )
    table = format_table(
        ["bank", "tile mm", "wire cyc (Table 1)", "wire cyc (RC model)",
         "tag cyc", "tag+repl cyc"],
        [
            (
                f"{bank['capacity'] // 1024}KB",
                bank["tile_side_mm"],
                bank["table1_wire_delay"],
                bank["model_wire_delay"],
                bank["tag_latency"],
                bank["tag_replace_latency"],
            )
            for bank in params["banks"]
        ],
    )
    return f"{header}\n{table}"
