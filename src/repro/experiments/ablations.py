"""Ablations of the design choices DESIGN.md calls out.

Each ablation isolates one mechanism of the proposal and measures its
contribution on a fixed workload mix:

* ``router``      -- single-cycle router vs the classic 5-stage pipeline;
* ``spike_queue`` -- halo spike issue-queue depth (the paper uses 2);
* ``multicast``   -- parallel tag match vs sequential search (Fast-LRU
                     contents held fixed);
* ``fast_lru``    -- overlapped vs classic replacement (multicast held
                     fixed);
* ``sampling``    -- set-sampling sensitivity: the figure shapes must not
                     depend on the sampled index-space size;
* ``issue_model`` -- hide_cycles sensitivity of the blocking-read IPC
                     model (normalized comparisons must be stable).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentConfig, geometric_mean
from repro.experiments.runner import run_cells, spec_for

DEFAULT_BENCHMARKS = ("art", "twolf", "mcf")
SCHEME = "multicast+fast_lru"


@dataclass(frozen=True)
class AblationPoint:
    """One configuration in an ablation sweep."""

    label: str
    geomean_ipc: float
    mean_latency: float


def _mix_specs(config: ExperimentConfig, design: str = "A",
               scheme: str = SCHEME, **overrides) -> list:
    """One engine cell per mix benchmark, with the sweep's overrides."""
    return [
        spec_for(design, scheme, benchmark, config, **overrides)
        for benchmark in DEFAULT_BENCHMARKS
    ]


def _points(config: ExperimentConfig, variants) -> list[AblationPoint]:
    """Run every (label, specs) variant through the engine in one batch.

    Handing the engine the flattened cell list lets ``--jobs`` spread the
    whole ablation, not just one variant, over workers.
    """
    all_specs = [spec for _, specs in variants for spec in specs]
    results = iter(run_cells(all_specs))
    points = []
    for label, specs in variants:
        cell_results = [next(results) for _ in specs]
        points.append(
            AblationPoint(
                label,
                geometric_mean([r.ipc for r in cell_results]),
                sum(r.average_latency for r in cell_results) / len(cell_results),
            )
        )
    return points


def router_ablation(config: ExperimentConfig | None = None) -> list[AblationPoint]:
    """Single-cycle vs pipelined router, Design A, Multicast Fast-LRU."""
    config = config or ExperimentConfig()
    return _points(config, [
        (label, _mix_specs(config, single_cycle_router=single))
        for label, single in (("single-cycle", True), ("pipelined (5-stage)", False))
    ])


def spike_queue_ablation(
    config: ExperimentConfig | None = None,
    depths: tuple = (1, 2, 4),
) -> list[AblationPoint]:
    """Spike issue-queue depth on Design F."""
    config = config or ExperimentConfig()
    return _points(config, [
        (f"{depth}-entry spike queue",
         _mix_specs(config, design="F", spike_queue_entries=depth))
        for depth in depths
    ])


def spiral_spike_ablation(
    config: ExperimentConfig | None = None,
) -> list[AblationPoint]:
    """Straight vs spiral (curved) spikes on a uniform halo.

    Section 4: curving a spike packs the die better but lengthens its
    wires; we model the spiral as doubling every spike wire delay.
    """
    config = config or ExperimentConfig()
    return _points(config, [
        (label, _mix_specs(config, design="E", spike_wire_scale=scale))
        for label, scale in (("straight spikes", 1), ("spiral spikes (2x wire)", 2))
    ])


def mechanism_ablation(config: ExperimentConfig | None = None) -> list[AblationPoint]:
    """Factor the proposal: baseline -> +Fast-LRU -> +multicast -> +halo."""
    config = config or ExperimentConfig()
    steps = (
        ("unicast promotion on mesh (baseline)", "A", "unicast+promotion"),
        ("+ Fast-LRU", "A", "unicast+fast_lru"),
        ("+ multicast", "A", "multicast+fast_lru"),
        ("+ halo (Design F)", "F", "multicast+fast_lru"),
    )
    return _points(config, [
        (label, _mix_specs(config, design=design, scheme=scheme))
        for label, design, scheme in steps
    ])


def _halo_ratios(config: ExperimentConfig, values, overrides_of) -> dict:
    """Design F over Design A geomean-IPC ratio per swept value."""
    variants = []
    for value in values:
        for design in ("A", "F"):
            variants.append(
                ((value, design),
                 _mix_specs(config, design=design, **overrides_of(value)))
            )
    points = dict(zip((key for key, _ in variants),
                      _points(config, variants)))
    return {
        value: points[(value, "F")].geomean_ipc / points[(value, "A")].geomean_ipc
        for value in values
    }


def sampling_ablation(
    config: ExperimentConfig | None = None,
    index_spaces: tuple = (4, 8, 16),
) -> dict[int, float]:
    """Halo-vs-mesh IPC ratio across set-sampling factors.

    The ratio (Design F / Design A, same scheme) is the quantity Fig. 9
    reports; it must be stable under the sampling choice.
    """
    config = config or ExperimentConfig()
    return _halo_ratios(config, index_spaces, lambda v: {"index_space": v})


def issue_model_ablation(
    config: ExperimentConfig | None = None,
    hide_values: tuple = (0, 10, 20),
) -> dict[int, float]:
    """Halo-vs-mesh IPC ratio across the IPC model's hide_cycles knob."""
    config = config or ExperimentConfig()
    return _halo_ratios(config, hide_values, lambda v: {"hide_cycles": v})


def render(points: list[AblationPoint], title: str) -> str:
    lines = [title, "=" * len(title)]
    base = points[0].geomean_ipc
    for point in points:
        lines.append(
            f"  {point.label:38s} IPC {point.geomean_ipc:.3f} "
            f"({point.geomean_ipc / base:+.1%} vs first)  "
            f"lat {point.mean_latency:.1f}"
        )
    return "\n".join(lines)
