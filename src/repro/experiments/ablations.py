"""Ablations of the design choices DESIGN.md calls out.

Each ablation isolates one mechanism of the proposal and measures its
contribution on a fixed workload mix:

* ``router``      -- single-cycle router vs the classic 5-stage pipeline;
* ``spike_queue`` -- halo spike issue-queue depth (the paper uses 2);
* ``multicast``   -- parallel tag match vs sequential search (Fast-LRU
                     contents held fixed);
* ``fast_lru``    -- overlapped vs classic replacement (multicast held
                     fixed);
* ``sampling``    -- set-sampling sensitivity: the figure shapes must not
                     depend on the sampled index-space size;
* ``issue_model`` -- hide_cycles sensitivity of the blocking-read IPC
                     model (normalized comparisons must be stable).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import RouterConfig
from repro.core.system import NetworkedCacheSystem
from repro.experiments.common import ExperimentConfig, geometric_mean
from repro.workloads.generator import TraceGenerator
from repro.workloads.profiles import profile_by_name

DEFAULT_BENCHMARKS = ("art", "twolf", "mcf")


@dataclass(frozen=True)
class AblationPoint:
    """One configuration in an ablation sweep."""

    label: str
    geomean_ipc: float
    mean_latency: float


def _run_mix(
    benchmarks,
    measure: int,
    seed: int,
    build_system,
    hide_cycles: int = 0,
    index_space: int | None = None,
) -> tuple[float, float]:
    """(geomean IPC, mean latency) of a system factory over a mix."""
    ipcs, latencies = [], []
    for name in benchmarks:
        profile = profile_by_name(name)
        kwargs = {} if index_space is None else {"index_space": index_space}
        generator = TraceGenerator(profile, seed=seed, **kwargs)
        trace, warmup = generator.generate_with_warmup(measure=measure)
        system = build_system()
        result = system.run(trace, profile, warmup=warmup,
                            hide_cycles=hide_cycles)
        ipcs.append(result.ipc)
        latencies.append(result.average_latency)
    return geometric_mean(ipcs), sum(latencies) / len(latencies)


def router_ablation(config: ExperimentConfig | None = None) -> list[AblationPoint]:
    """Single-cycle vs pipelined router, Design A, Multicast Fast-LRU."""
    config = config or ExperimentConfig()
    points = []
    for label, single in (("single-cycle", True), ("pipelined (5-stage)", False)):
        ipc, latency = _run_mix(
            DEFAULT_BENCHMARKS,
            config.measure,
            config.seed,
            lambda single=single: NetworkedCacheSystem(
                design="A",
                scheme="multicast+fast_lru",
                router_config=RouterConfig(single_cycle=single),
            ),
        )
        points.append(AblationPoint(label, ipc, latency))
    return points


def spike_queue_ablation(
    config: ExperimentConfig | None = None,
    depths: tuple = (1, 2, 4),
) -> list[AblationPoint]:
    """Spike issue-queue depth on Design F."""
    config = config or ExperimentConfig()
    points = []
    for depth in depths:
        ipc, latency = _run_mix(
            DEFAULT_BENCHMARKS,
            config.measure,
            config.seed,
            lambda depth=depth: NetworkedCacheSystem(
                design="F",
                scheme="multicast+fast_lru",
                spike_queue_entries=depth,
            ),
        )
        points.append(AblationPoint(f"{depth}-entry spike queue", ipc, latency))
    return points


def spiral_spike_ablation(
    config: ExperimentConfig | None = None,
) -> list[AblationPoint]:
    """Straight vs spiral (curved) spikes on a uniform halo.

    Section 4: curving a spike packs the die better but lengthens its
    wires; we model the spiral as doubling every spike wire delay.
    """
    from repro.cache.bank import bank_descriptors_for_column
    from repro.core.geometry import CacheGeometry
    from repro.noc.topology import HaloTopology

    config = config or ExperimentConfig()
    points = []
    for label, scale in (("straight spikes", 1), ("spiral spikes (2x wire)", 2)):

        def build(scale=scale):
            system = NetworkedCacheSystem(design="E", scheme="multicast+fast_lru")
            topology = HaloTopology(
                16, 16,
                position_bank_capacities=[64 * 1024] * 16,
                memory_pin_delay=16,
                wire_delay_scale=scale,
            )
            columns = [
                bank_descriptors_for_column([64 * 1024] * 16) for _ in range(16)
            ]
            system.geometry = CacheGeometry(topology, columns)
            system.memory.channel.floor_clock = system.geometry.floor_clock
            from repro.core.flows import TransactionEngine
            system.engine = TransactionEngine(
                system.geometry, system.memory, system.scheme
            )
            return system

        ipc, latency = _run_mix(
            DEFAULT_BENCHMARKS, config.measure, config.seed, build
        )
        points.append(AblationPoint(label, ipc, latency))
    return points


def mechanism_ablation(config: ExperimentConfig | None = None) -> list[AblationPoint]:
    """Factor the proposal: baseline -> +Fast-LRU -> +multicast -> +halo."""
    config = config or ExperimentConfig()
    steps = (
        ("unicast promotion on mesh (baseline)", "A", "unicast+promotion"),
        ("+ Fast-LRU", "A", "unicast+fast_lru"),
        ("+ multicast", "A", "multicast+fast_lru"),
        ("+ halo (Design F)", "F", "multicast+fast_lru"),
    )
    points = []
    for label, design, scheme in steps:
        ipc, latency = _run_mix(
            DEFAULT_BENCHMARKS,
            config.measure,
            config.seed,
            lambda design=design, scheme=scheme: NetworkedCacheSystem(
                design=design, scheme=scheme
            ),
        )
        points.append(AblationPoint(label, ipc, latency))
    return points


def sampling_ablation(
    config: ExperimentConfig | None = None,
    index_spaces: tuple = (4, 8, 16),
) -> dict[int, float]:
    """Halo-vs-mesh IPC ratio across set-sampling factors.

    The ratio (Design F / Design A, same scheme) is the quantity Fig. 9
    reports; it must be stable under the sampling choice.
    """
    config = config or ExperimentConfig()
    ratios = {}
    for index_space in index_spaces:
        ipc_a, _ = _run_mix(
            DEFAULT_BENCHMARKS, config.measure, config.seed,
            lambda: NetworkedCacheSystem(design="A", scheme="multicast+fast_lru"),
            index_space=index_space,
        )
        ipc_f, _ = _run_mix(
            DEFAULT_BENCHMARKS, config.measure, config.seed,
            lambda: NetworkedCacheSystem(design="F", scheme="multicast+fast_lru"),
            index_space=index_space,
        )
        ratios[index_space] = ipc_f / ipc_a
    return ratios


def issue_model_ablation(
    config: ExperimentConfig | None = None,
    hide_values: tuple = (0, 10, 20),
) -> dict[int, float]:
    """Halo-vs-mesh IPC ratio across the IPC model's hide_cycles knob."""
    config = config or ExperimentConfig()
    ratios = {}
    for hide in hide_values:
        ipc_a, _ = _run_mix(
            DEFAULT_BENCHMARKS, config.measure, config.seed,
            lambda: NetworkedCacheSystem(design="A", scheme="multicast+fast_lru"),
            hide_cycles=hide,
        )
        ipc_f, _ = _run_mix(
            DEFAULT_BENCHMARKS, config.measure, config.seed,
            lambda: NetworkedCacheSystem(design="F", scheme="multicast+fast_lru"),
            hide_cycles=hide,
        )
        ratios[hide] = ipc_f / ipc_a
    return ratios


def render(points: list[AblationPoint], title: str) -> str:
    lines = [title, "=" * len(title)]
    base = points[0].geomean_ipc
    for point in points:
        lines.append(
            f"  {point.label:38s} IPC {point.geomean_ipc:.3f} "
            f"({point.geomean_ipc / base:+.1%} vs first)  "
            f"lat {point.mean_latency:.1f}"
        )
    return "\n".join(lines)
