"""CMP scaling study (the paper's future-work direction, Section 7).

Multiprogrammed workloads share the networked L2: throughput (sum of
per-core IPC) and average latency as the core count grows, mesh vs halo.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cmp import CMPCacheSystem
from repro.workloads import TraceGenerator, profile_by_name

#: Multiprogrammed mix, one benchmark per core (paper Table-2 members).
DEFAULT_MIX = ("twolf", "vpr", "art", "galgel")


@dataclass(frozen=True)
class ScalingPoint:
    design: str
    num_cores: int
    aggregate_ipc: float
    average_latency: float
    fairness: float


def _workload(name: str, seed: int, measure: int):
    profile = profile_by_name(name)
    trace, warmup = TraceGenerator(profile, seed=seed).generate_with_warmup(
        measure=measure
    )
    return (profile, trace, warmup)


def run(
    designs: tuple = ("A", "F"),
    core_counts: tuple = (1, 2, 4),
    measure: int = 1500,
    seed: int = 10,
) -> list[ScalingPoint]:
    points = []
    for design in designs:
        for num_cores in core_counts:
            mix = DEFAULT_MIX[:num_cores]
            workloads = [
                _workload(name, seed + i, measure) for i, name in enumerate(mix)
            ]
            system = CMPCacheSystem(design=design, num_cores=num_cores)
            result = system.run(workloads)
            points.append(
                ScalingPoint(
                    design=design,
                    num_cores=num_cores,
                    aggregate_ipc=result.aggregate_ipc,
                    average_latency=result.average_latency,
                    fairness=result.fairness,
                )
            )
    return points


def render(points: list[ScalingPoint]) -> str:
    lines = ["CMP scaling: shared networked L2, multiprogrammed mix",
             f"{'design':>6} {'cores':>5} {'agg IPC':>8} {'avg lat':>8} {'fairness':>9}"]
    for point in points:
        lines.append(
            f"{point.design:>6} {point.num_cores:>5} "
            f"{point.aggregate_ipc:>8.3f} {point.average_latency:>8.1f} "
            f"{point.fairness:>9.2f}"
        )
    return "\n".join(lines)
