"""ASCII chart rendering for the paper's figures.

The paper's evaluation figures are bar charts; these helpers render the
same series as text so the benchmark harness can show the *shape* (who
wins, by how much) directly in a terminal, with no plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import ConfigurationError

#: Fill characters for stacked-bar segments, in series order.
STACK_GLYPHS = "#=:.+*"


def horizontal_bars(
    values: Mapping[str, float],
    width: int = 50,
    unit: str = "",
    baseline: float | None = None,
) -> str:
    """One horizontal bar per labeled value, scaled to the maximum.

    *baseline* draws a ``|`` marker at that value (e.g. normalized 1.0).
    """
    if not values:
        raise ConfigurationError("nothing to chart")
    maximum = max(values.values())
    if maximum <= 0:
        raise ConfigurationError("chart needs a positive maximum")
    label_width = max(len(label) for label in values)
    lines = []
    marker = None
    if baseline is not None and baseline <= maximum:
        marker = round(baseline / maximum * width)
    for label, value in values.items():
        filled = round(value / maximum * width)
        bar = list("#" * filled + " " * (width - filled))
        if marker is not None and 0 <= marker < width and bar[marker] == " ":
            bar[marker] = "|"
        lines.append(
            f"{label.rjust(label_width)} {''.join(bar)} {value:.2f}{unit}"
        )
    return "\n".join(lines)


def stacked_bars(
    rows: Mapping[str, Mapping[str, float]],
    width: int = 50,
    normalize: bool = True,
) -> str:
    """Stacked horizontal bars (e.g. Fig. 7's bank/network/memory split).

    Each row maps series name -> value; with *normalize* every bar spans
    the full width (percent stacking, like the paper's Figure 7).
    """
    if not rows:
        raise ConfigurationError("nothing to chart")
    series = list(next(iter(rows.values())))
    label_width = max(len(label) for label in rows)
    global_max = max(sum(parts.values()) for parts in rows.values())
    if global_max <= 0:
        raise ConfigurationError("chart needs positive totals")
    lines = []
    for label, parts in rows.items():
        if list(parts) != series:
            raise ConfigurationError("all rows must share the same series")
        total = sum(parts.values())
        scale = width / (total if normalize and total > 0 else global_max)
        bar = ""
        for glyph, value in zip(STACK_GLYPHS, parts.values()):
            bar += glyph * round(value * scale)
        bar = bar[:width].ljust(width if normalize else 0)
        lines.append(f"{label.rjust(label_width)} {bar}")
    legend = "  ".join(
        f"{glyph}={name}" for glyph, name in zip(STACK_GLYPHS, series)
    )
    lines.append(f"{' ' * label_width} [{legend}]")
    return "\n".join(lines)


def grouped_bars(
    groups: Mapping[str, Mapping[str, float]],
    width: int = 40,
) -> str:
    """Grouped bars (e.g. Fig. 9: per benchmark, one bar per design)."""
    if not groups:
        raise ConfigurationError("nothing to chart")
    maximum = max(
        value for group in groups.values() for value in group.values()
    )
    if maximum <= 0:
        raise ConfigurationError("chart needs a positive maximum")
    label_width = max(
        len(name) for group in groups.values() for name in group
    )
    lines = []
    for group_label, group in groups.items():
        lines.append(f"{group_label}:")
        for name, value in group.items():
            filled = round(value / maximum * width)
            lines.append(
                f"  {name.rjust(label_width)} {'#' * filled} {value:.2f}"
            )
    return "\n".join(lines)


def sparkline(values: Iterable[float]) -> str:
    """Compact one-line trend (e.g. a load-latency curve)."""
    values = list(values)
    if not values:
        raise ConfigurationError("nothing to chart")
    glyphs = " .:-=+*#%@"
    low, high = min(values), max(values)
    span = high - low or 1.0
    return "".join(
        glyphs[min(len(glyphs) - 1, int((v - low) / span * (len(glyphs) - 1)))]
        for v in values
    )
