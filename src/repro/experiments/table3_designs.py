"""Table 3: the six evaluated network designs, with structural checks.

Echoes each design's network and bank organization and verifies the
invariants the paper relies on: identical 16 MB capacity, identical 16-way
associativity per bank set, and the expected topology families.
"""

from __future__ import annotations

from repro.core.designs import DESIGN_NAMES, design_spec
from repro.experiments.report import format_table
from repro.noc.topology import HaloTopology, SimplifiedMeshTopology


def run() -> list[dict]:
    rows = []
    for key in DESIGN_NAMES:
        spec = design_spec(key)
        geometry = spec.build()
        topology = geometry.topology
        associativity = sum(
            descriptor.ways for descriptor in geometry.columns[0]
        )
        rows.append(
            {
                "design": key,
                "network": spec.network,
                "banks": f"{len(spec.bank_capacities)} x "
                + "/".join(f"{c // 1024}KB" for c in sorted(set(spec.bank_capacities))),
                "capacity_mb": spec.total_capacity / (1024 * 1024),
                "associativity": associativity,
                "nodes": topology.num_nodes,
                "links": topology.num_links,
                "halo": isinstance(topology, HaloTopology),
                "simplified": isinstance(topology, SimplifiedMeshTopology),
                "memory_pin_delay": spec.memory_pin_delay,
            }
        )
    return rows


def render(rows: list[dict]) -> str:
    return format_table(
        [
            "design",
            "network",
            "bank organization",
            "MB",
            "assoc",
            "nodes",
            "links",
            "mem pin cyc",
        ],
        [
            (
                r["design"],
                r["network"],
                r["banks"],
                r["capacity_mb"],
                r["associativity"],
                r["nodes"],
                r["links"],
                r["memory_pin_delay"],
            )
            for r in rows
        ],
        title="Table 3: different network designs",
    )
