"""Figure 7: latency distribution of L2 accesses under Unicast LRU.

The paper reports that network traversal dominates the average access
latency (65 % on average) while bank access (25 %) and memory access
(10 %) are comparatively small -- the observation motivating the whole
design. We regenerate the per-benchmark stacked percentages on Design A.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.charts import stacked_bars
from repro.experiments.common import ExperimentConfig, run_systems
from repro.experiments.report import format_table

SCHEME = "unicast+lru"
DESIGN = "A"

#: The paper's average shares (network / bank / memory).
PAPER_AVERAGE = {"network": 0.65, "bank": 0.25, "memory": 0.10}


@dataclass
class Figure7Row:
    benchmark: str
    bank_pct: float
    network_pct: float
    memory_pct: float


def run(config: ExperimentConfig | None = None) -> list[Figure7Row]:
    config = config or ExperimentConfig()
    cells = [(DESIGN, SCHEME, benchmark) for benchmark in config.benchmarks]
    results = run_systems(cells, config)
    rows = []
    for benchmark in config.benchmarks:
        result = results[(DESIGN, SCHEME, benchmark)]
        shares = result.breakdown_fractions()
        rows.append(
            Figure7Row(
                benchmark=benchmark,
                bank_pct=100 * shares["bank"],
                network_pct=100 * shares["network"],
                memory_pct=100 * shares["memory"],
            )
        )
    return rows


def average_shares(rows: list[Figure7Row]) -> dict[str, float]:
    n = len(rows)
    return {
        "bank": sum(r.bank_pct for r in rows) / n / 100,
        "network": sum(r.network_pct for r in rows) / n / 100,
        "memory": sum(r.memory_pct for r in rows) / n / 100,
    }


def render(rows: list[Figure7Row]) -> str:
    table_rows = [
        (r.benchmark, r.bank_pct, r.network_pct, r.memory_pct) for r in rows
    ]
    avg = average_shares(rows)
    table_rows.append(
        ("avg", 100 * avg["bank"], 100 * avg["network"], 100 * avg["memory"])
    )
    body = format_table(
        ["benchmark", "bank %", "network %", "memory %"],
        table_rows,
        title="Figure 7: L2 access latency distribution (Unicast LRU, Design A)",
    )
    chart = stacked_bars(
        {
            r.benchmark: {
                "bank": r.bank_pct,
                "network": r.network_pct,
                "memory": r.memory_pct,
            }
            for r in rows
        }
    )
    paper = (
        f"paper averages: network {PAPER_AVERAGE['network']:.0%}, "
        f"bank {PAPER_AVERAGE['bank']:.0%}, memory {PAPER_AVERAGE['memory']:.0%}"
    )
    return f"{body}\n\n{chart}\n\n{paper}"
