"""Section 4 link analysis: removable and underutilized mesh links.

The paper derives, for an n x n mesh serving the cache traffic patterns
(Fig. 4):

* ``(n-2)^2`` of the ``4(n-1)^2`` links can be removed outright (all
  mid-mesh horizontals except those joining the core- and memory-attached
  columns), cutting link area by ~25 %;
* a further ``n(n-2) + 2(n-1)`` links are *underutilized* (used only for
  core/memory traffic) and can go at a small bandwidth cost, saving
  another ~25 %, at the price of the XYX routing scheme.

We recount from our actual topology constructions and report both the
paper's formulas and the constructed inventories.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.report import format_table
from repro.noc.topology import MeshTopology, SimplifiedMeshTopology


@dataclass(frozen=True)
class LinkAnalysisRow:
    n: int
    mesh_links: int
    simplified_links: int
    removed: int
    paper_total: int
    paper_removable: int
    paper_underutilized: int

    @property
    def link_saving(self) -> float:
        return 1 - self.simplified_links / self.mesh_links


def analyze(n: int) -> LinkAnalysisRow:
    mesh = MeshTopology(n, n)
    simplified = SimplifiedMeshTopology(n, n)
    return LinkAnalysisRow(
        n=n,
        mesh_links=mesh.num_links,
        simplified_links=simplified.num_links,
        removed=mesh.num_links - simplified.num_links,
        paper_total=MeshTopology.paper_total_links(n),
        paper_removable=MeshTopology.paper_removable_links(n),
        paper_underutilized=MeshTopology.paper_underutilized_links(n),
    )


def run(sizes: tuple = (4, 8, 16)) -> list[LinkAnalysisRow]:
    return [analyze(n) for n in sizes]


def render(rows: list[LinkAnalysisRow]) -> str:
    table = format_table(
        [
            "n",
            "mesh links",
            "simpl. links",
            "removed",
            "saving",
            "paper 4(n-1)^2",
            "paper (n-2)^2",
            "paper n(n-2)+2(n-1)",
        ],
        [
            (
                r.n,
                r.mesh_links,
                r.simplified_links,
                r.removed,
                f"{r.link_saving:.0%}",
                r.paper_total,
                r.paper_removable,
                r.paper_underutilized,
            )
            for r in rows
        ],
        title="Section 4: link inventory, full mesh vs simplified mesh",
    )
    return (
        f"{table}\n"
        "The simplified mesh keeps all verticals plus the first row's "
        "horizontals; the paper's two-stage removal totals ~50% link-area "
        "saving, matching the 'removed' column for large n."
    )
