"""One-shot regeneration of every paper artifact into a single report.

``python -m repro report --out results.txt`` runs all tables and figures
(at a configurable scale) and writes one combined document -- the
"reproduce the paper with one command" entry point.
"""

from __future__ import annotations

import pathlib

from repro.experiments import (
    fig2_hops,
    fig10_layout,
    figure7,
    figure8,
    figure9,
    headline,
    link_analysis,
    table1_params,
    table2_workloads,
    table3_designs,
    table4_area,
)
from repro.core.designs import DESIGN_NAMES
from repro.core.flows import FIGURE8_SCHEMES
from repro.experiments.common import ExperimentConfig, run_systems

#: (section title, runner, renderer); runners taking a config get one.
_ARTIFACTS = (
    ("Table 1 - system parameters", lambda cfg: table1_params.run(),
     table1_params.render),
    ("Table 2 - benchmarks", table2_workloads.run, table2_workloads.render),
    ("Table 3 - network designs", lambda cfg: table3_designs.run(),
     table3_designs.render),
    ("Fig. 2 example - LRU vs Fast-LRU hops", lambda cfg: fig2_hops.run(),
     fig2_hops.render),
    ("Section 4 - link analysis", lambda cfg: link_analysis.run(),
     link_analysis.render),
    ("Figure 7 - latency distribution", figure7.run, figure7.render),
    ("Figure 8 - replacement schemes", figure8.run, figure8.render),
    ("Figure 9 - design space", figure9.run, figure9.render),
    ("Table 4 - area analysis", lambda cfg: table4_area.run(),
     table4_area.render),
    ("Figure 10 - halo floorplan", lambda cfg: fig10_layout.run(),
     fig10_layout.render),
    ("Headline claims", headline.run, headline.render),
)


def artifact_names() -> tuple[str, ...]:
    return tuple(title for title, _, _ in _ARTIFACTS)


def simulation_cells(config: ExperimentConfig) -> list[tuple[str, str, str]]:
    """Every (design, scheme, benchmark) cell the report will simulate.

    Fig. 7 (Unicast LRU on A) and the headline claims are subsets of the
    Fig. 8 x Fig. 9 grids, so this union is the report's complete
    simulation workload.
    """
    cells = [
        ("A", scheme, benchmark)
        for scheme in FIGURE8_SCHEMES
        for benchmark in config.benchmarks
    ]
    cells += [
        (design, "multicast+fast_lru", benchmark)
        for design in DESIGN_NAMES
        if design != "A"
        for benchmark in config.benchmarks
    ]
    return cells


def generate(config: ExperimentConfig | None = None,
             progress=None) -> str:
    """Run every artifact and return the combined report text.

    *progress* (optional) is called with each section title as it starts.
    """
    config = config or ExperimentConfig()
    sections = [
        "Reproduction report: 'A Domain-Specific On-Chip Network Design "
        "for Large Scale Cache Systems' (HPCA 2007)",
        f"scale: {config.measure} measured accesses per cell, "
        f"seed {config.seed}",
    ]
    # Evaluate the full simulation grid in one engine batch up front:
    # with --jobs > 1 the pool spans artifact boundaries, and the
    # per-artifact runners below then hit the engine memo.
    if progress is not None:
        progress("simulation sweep (all figure cells)")
    run_systems(simulation_cells(config), config)
    for title, runner, renderer in _ARTIFACTS:
        if progress is not None:
            progress(title)
        results = runner(config)
        banner = "#" * (len(title) + 4)
        sections.append(f"{banner}\n# {title} #\n{banner}\n\n{renderer(results)}")
    # No generation timestamp or duration: the report is an artifact of
    # (code, spec) and identical runs must produce byte-identical files
    # (wall cost is on stderr via the engine's batch summary instead).
    return "\n\n\n".join(sections)


def write(path: str | pathlib.Path,
          config: ExperimentConfig | None = None,
          progress=None) -> pathlib.Path:
    """Generate the report and write it to *path*."""
    path = pathlib.Path(path)
    path.write_text(generate(config, progress=progress) + "\n",
                    encoding="utf-8")
    return path
