"""Load-latency characterization of the flit-level network.

The classic NoC evaluation the paper's router section implies: uniform
random traffic at increasing injection rates, measuring average packet
latency until saturation. Exercises the single-cycle multicast router
under real contention (VC backpressure, switch conflicts, credit stalls).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.config import RouterConfig
from repro.noc import MeshTopology, MessageType, Packet, make_network


@dataclass(frozen=True)
class LoadPoint:
    injection_rate: float  # packets per node per cycle
    offered: int
    delivered: int
    average_latency: float
    max_latency: int


def run_load_point(
    injection_rate: float,
    mesh_size: int = 8,
    cycles: int = 600,
    drain_cycles: int = 4000,
    seed: int = 1,
    single_cycle: bool = True,
    core: str | None = None,
) -> LoadPoint:
    """Uniform random traffic at *injection_rate* for *cycles* cycles."""
    rng = random.Random(seed)
    topology = MeshTopology(mesh_size, mesh_size)
    network = make_network(
        topology,
        router_config=RouterConfig(single_cycle=single_cycle),
        core=core,
    )
    nodes = sorted(topology.nodes)
    offered = 0
    for _ in range(cycles):
        for node in nodes:
            if rng.random() < injection_rate:
                destination = rng.choice(nodes)
                if destination == node:
                    continue
                network.inject(
                    Packet(
                        MessageType.READ_REQUEST,
                        source=node,
                        destinations=(destination,),
                    )
                )
                offered += 1
        network.step()
    network.run_until_drained(max_cycles=drain_cycles + cycles * 50)
    stats = network.stats
    return LoadPoint(
        injection_rate=injection_rate,
        offered=offered,
        delivered=stats.packets_delivered,
        average_latency=stats.average_latency,
        max_latency=stats.max_latency,
    )


def run(
    rates: tuple = (0.02, 0.15, 0.30, 0.50),
    mesh_size: int = 8,
    cycles: int = 400,
    seed: int = 1,
    core: str | None = None,
) -> list[LoadPoint]:
    return [
        run_load_point(
            rate, mesh_size=mesh_size, cycles=cycles, seed=seed, core=core
        )
        for rate in rates
    ]


def render(points: list[LoadPoint]) -> str:
    from repro.experiments.charts import sparkline

    lines = ["NoC load-latency curve (8x8 mesh, uniform random, 1-flit packets)",
             f"latency trend: [{sparkline(p.average_latency for p in points)}]"]
    for point in points:
        lines.append(
            f"  rate {point.injection_rate:5.3f} pkt/node/cyc: "
            f"avg {point.average_latency:7.1f} cyc, "
            f"max {point.max_latency:5d} cyc "
            f"({point.delivered} delivered)"
        )
    return "\n".join(lines)
