"""The paper's abstract-level combined claims.

* The full proposal (halo + Multicast Fast-LRU, Design F) improves average
  IPC by ~38 % over the mesh + Multicast Promotion baseline (Design A);
* it uses only ~23 % of the baseline's interconnect area;
* Multicast Fast-LRU alone is worth ~20 % IPC over Multicast Promotion;
* the halo topology alone is worth ~18 % over the mesh (the abstract's
  figure; Section 6.2 reports 12-13 % for designs E/F).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import table4_area
from repro.experiments.common import ExperimentConfig, geometric_mean, run_systems


@dataclass
class HeadlineResult:
    ipc_full_vs_baseline: float
    ipc_fastlru_vs_promotion: float
    ipc_halo_vs_mesh: float
    interconnect_area_ratio: float


PAPER = HeadlineResult(
    ipc_full_vs_baseline=1.38,
    ipc_fastlru_vs_promotion=1.20,
    ipc_halo_vs_mesh=1.18,
    interconnect_area_ratio=0.23,
)


def run(config: ExperimentConfig | None = None) -> HeadlineResult:
    config = config or ExperimentConfig()
    points = (
        ("A", "multicast+promotion"),
        ("A", "multicast+fast_lru"),
        ("F", "multicast+fast_lru"),
    )
    results = run_systems(
        [(d, s, b) for d, s in points for b in config.benchmarks], config
    )

    def geomean_ipc(design: str, scheme: str) -> float:
        return geometric_mean(
            [
                results[(design, scheme, benchmark)].ipc
                for benchmark in config.benchmarks
            ]
        )

    baseline = geomean_ipc("A", "multicast+promotion")
    fastlru_mesh = geomean_ipc("A", "multicast+fast_lru")
    full = geomean_ipc("F", "multicast+fast_lru")
    areas = table4_area.run(("A", "F"))
    return HeadlineResult(
        ipc_full_vs_baseline=full / baseline,
        ipc_fastlru_vs_promotion=fastlru_mesh / baseline,
        ipc_halo_vs_mesh=full / fastlru_mesh,
        interconnect_area_ratio=table4_area.interconnect_ratio(areas),
    )


def render(result: HeadlineResult) -> str:
    def row(label: str, measured: float, paper: float, pct: bool) -> str:
        if pct:
            return f"  {label:44s} {measured - 1:+7.0%}  (paper {paper - 1:+.0%})"
        return f"  {label:44s} {measured:7.0%}  (paper {paper:.0%})"

    return "\n".join(
        [
            "Headline claims: full proposal vs mesh + Multicast Promotion",
            row(
                "IPC, halo+Fast-LRU (F) vs baseline (A)",
                result.ipc_full_vs_baseline,
                PAPER.ipc_full_vs_baseline,
                True,
            ),
            row(
                "IPC, Multicast Fast-LRU vs Promotion (on A)",
                result.ipc_fastlru_vs_promotion,
                PAPER.ipc_fastlru_vs_promotion,
                True,
            ),
            row(
                "IPC, halo (F) vs mesh (A), same scheme",
                result.ipc_halo_vs_mesh,
                PAPER.ipc_halo_vs_mesh,
                True,
            ),
            row(
                "interconnect area, F vs A",
                result.interconnect_area_ratio,
                PAPER.interconnect_area_ratio,
                False,
            ),
        ]
    )
