"""Persistent on-disk cache for experiment results.

Simulation cells are deterministic functions of their specification, so
their :class:`~repro.core.system.RunResult` objects can be reused across
processes and across ``python -m repro`` invocations. Entries are keyed by
the full cell specification *plus a fingerprint of the ``repro`` source
tree*: any code change produces a new fingerprint, so stale results
self-invalidate instead of silently surviving a model fix.

Storage layout: one pickle file per entry under the cache directory, named
by the SHA-256 of the key. Writes go through a temporary file in the same
directory followed by :func:`os.replace`, which is atomic on POSIX --
concurrent workers (or concurrent ``repro`` invocations) can race on the
same entry and the loser simply overwrites the winner with identical
bytes, never a torn file. A corrupted or unreadable entry is treated as a
miss and deleted, never raised.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import pickle
import tempfile
from dataclasses import dataclass, field
from typing import Any

#: Bump to orphan every existing entry (format change).
CACHE_FORMAT = 1

#: Default cache location; override with $REPRO_CACHE_DIR or --cache-dir.
DEFAULT_CACHE_DIR = ".repro-cache"

_fingerprint: str | None = None


def code_fingerprint() -> str:
    """Hex digest over every ``.py`` file of the installed ``repro`` tree.

    Hashes relative paths and file contents (not mtimes), so rebuilding an
    identical tree keeps the fingerprint stable while any source edit --
    including to modules a cell never imports -- invalidates it. Computed
    once per process.
    """
    global _fingerprint
    if _fingerprint is None:
        import repro

        root = pathlib.Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _fingerprint = digest.hexdigest()[:20]
    return _fingerprint


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    discarded: int = 0
    write_failures: int = 0


@dataclass
class ResultCache:
    """Fingerprinted, atomically-written pickle store for run results.

    ``fingerprint`` defaults to :func:`code_fingerprint`; tests inject a
    fixed value to exercise invalidation without editing source files.
    """

    directory: pathlib.Path = field(
        default_factory=lambda: pathlib.Path(
            os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        )
    )
    fingerprint: str = ""
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.directory = pathlib.Path(self.directory)
        if not self.fingerprint:
            self.fingerprint = code_fingerprint()

    # -- keying ---------------------------------------------------------------

    def _full_key(self, key: tuple) -> tuple:
        return (CACHE_FORMAT, self.fingerprint, key)

    def _path(self, key: tuple) -> pathlib.Path:
        digest = hashlib.sha256(repr(self._full_key(key)).encode()).hexdigest()
        return self.directory / f"{digest}.pkl"

    # -- access ---------------------------------------------------------------

    def get(self, key: tuple) -> Any | None:
        """Stored value for *key*, or ``None``.

        A corrupted, truncated, or mismatched entry is deleted and counted
        in ``stats.discarded`` -- cache damage degrades to a re-run, it is
        never fatal.
        """
        path = self._path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            payload = pickle.loads(blob)
            stored_key, value = payload["key"], payload["value"]
        except Exception:
            self._discard(path)
            self.stats.misses += 1
            return None
        if stored_key != self._full_key(key):
            # Hash collision or tampered entry: treat as damage.
            self._discard(path)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return value

    def put(self, key: tuple, value: Any) -> None:
        """Store *value* under *key* (atomic: temp file + rename).

        An unwritable cache (bad ``--cache-dir``, full or read-only disk)
        just loses the entry -- the simulation result still stands, so a
        storage failure must never take the run down with it.
        """
        payload = {"key": self._full_key(key), "value": value}
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-", suffix=".pkl"
            )
        except OSError:
            self.stats.write_failures += 1
            return
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, self._path(key))
        except BaseException as error:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            if isinstance(error, OSError):
                self.stats.write_failures += 1
                return
            raise
        self.stats.stores += 1

    def _discard(self, path: pathlib.Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
        self.stats.discarded += 1

    # -- maintenance ----------------------------------------------------------

    def clear(self) -> int:
        """Delete every entry (any fingerprint); returns the count removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.pkl"))
