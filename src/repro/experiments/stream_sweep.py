"""Overload sweep: offered load x admission policy through the engine.

The streaming analogue of the fault campaigns: a grid of
:class:`~repro.stream.engine.StreamSpec` cells (every combination of
offered-load multiplier and admission policy on one design/mix) is
evaluated through :func:`~repro.experiments.runner.run_cells` -- so the
sweep dedups, memoizes, caches persistently, and fans out over worker
processes exactly like the figure drivers, and its merged telemetry is
bit-identical serial vs ``--jobs N`` vs warm cache replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.experiments.runner import run_cells
from repro.stream.arrivals import MIX_NAMES
from repro.stream.engine import StreamResult, StreamSpec, stream_spec_for
from repro.stream.service import ADMISSION_POLICIES

#: Default offered-load multipliers: below the knee, near it, and past it.
DEFAULT_LOADS = (0.5, 1.0, 2.0, 4.0)


@dataclass(frozen=True)
class StreamSweepConfig:
    """Coordinates of one overload sweep."""

    design: str = "C"
    mix: str = "duo-bursty"
    loads: tuple[float, ...] = DEFAULT_LOADS
    policies: tuple[str, ...] = ADMISSION_POLICIES
    cycles: int = 4000
    seed: int = 0
    queue_limit: int = 32
    max_outstanding: int = 8
    token_rate: float = 0.12
    token_burst: float = 8.0
    core: str = "object"
    window: int = 64


def sweep_specs(config: StreamSweepConfig) -> list[StreamSpec]:
    """The sweep's cells in deterministic (policy-major) order."""
    assert config.mix in MIX_NAMES
    return [
        stream_spec_for(
            config.design,
            policy,
            config.mix,
            seed=config.seed,
            cycles=config.cycles,
            load=load,
            queue_limit=config.queue_limit,
            max_outstanding=config.max_outstanding,
            token_rate=config.token_rate,
            token_burst=config.token_burst,
            core=config.core,
            window=config.window,
        )
        for policy in config.policies
        for load in config.loads
    ]


def run_sweep(
    config: StreamSweepConfig, **engine_kwargs: Any
) -> list[StreamResult]:
    """Evaluate the sweep through the experiment engine."""
    return run_cells(sweep_specs(config), **engine_kwargs)


def render(
    config: StreamSweepConfig, results: Sequence[StreamResult]
) -> str:
    """ASCII overload table: one row per (policy, load) cell."""
    header = (
        f"Overload sweep: design {config.design}, mix {config.mix}, "
        f"{config.cycles} cycles, seed {config.seed}\n"
    )
    columns = (
        f"{'policy':<14} {'load':>5} {'offered':>8} {'admit%':>7} "
        f"{'reject%':>8} {'goodput/kcyc':>13} {'p50':>6} {'p95':>6} "
        f"{'p99':>6}"
    )
    lines = [header, columns, "-" * len(columns)]
    specs = sweep_specs(config)
    for spec, result in zip(specs, results):
        lines.append(
            f"{spec.scheme:<14} {spec.load:>5.2f} {result.offered:>8} "
            f"{result.availability * 100:>6.1f}% "
            f"{result.rejection_rate * 100:>7.1f}% "
            f"{result.goodput_per_kcycle:>13.2f} "
            f"{result.quantiles['p50']:>6.0f} "
            f"{result.quantiles['p95']:>6.0f} "
            f"{result.quantiles['p99']:>6.0f}"
        )
    return "\n".join(lines)
