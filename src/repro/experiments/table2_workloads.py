"""Table 2: benchmark statistics, plus measured properties of the
synthetic traces standing in for the SPEC2000 runs.

The left columns echo the paper's numbers; the right columns measure the
generated traces (write fraction and accesses/instruction must match the
profile, by construction and by test).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentConfig
from repro.experiments.report import format_table
from repro.workloads.generator import TraceGenerator
from repro.workloads.profiles import BENCHMARKS


def run(config: ExperimentConfig | None = None) -> list[dict]:
    config = config or ExperimentConfig()
    rows = []
    for profile in BENCHMARKS:
        trace = TraceGenerator(profile, seed=config.seed).generate(
            max(2000, config.measure // 5)
        )
        accesses = len(trace)
        rows.append(
            {
                "name": profile.name,
                "suite": profile.suite,
                "instr": profile.instructions,
                "perfect_ipc": profile.perfect_l2_ipc,
                "reads_M": profile.l2_reads / 1e6,
                "writes_M": profile.l2_writes / 1e6,
                "access_per_instr": profile.l2_access_per_instr,
                "trace_write_frac": trace.write_count / accesses,
                "trace_access_per_instr": accesses / trace.total_instructions,
                "trace_distinct_blocks": trace.distinct_blocks(),
            }
        )
    return rows


def render(rows: list[dict]) -> str:
    return format_table(
        [
            "benchmark",
            "suite",
            "instr",
            "perfect IPC",
            "L2 rd (M)",
            "L2 wr (M)",
            "acc/instr",
            "trace wr frac",
            "trace acc/instr",
            "trace blocks",
        ],
        [
            (
                r["name"],
                r["suite"],
                f"{r['instr'] // 1_000_000}M",
                r["perfect_ipc"],
                r["reads_M"],
                r["writes_M"],
                f"{r['access_per_instr']:.3f}",
                f"{r['trace_write_frac']:.3f}",
                f"{r['trace_access_per_instr']:.3f}",
                r["trace_distinct_blocks"],
            )
            for r in rows
        ],
        title="Table 2: benchmarks (paper stats | synthetic trace check)",
    )
