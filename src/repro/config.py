"""System parameters of the networked L2 cache (Table 1 of the paper).

The paper evaluates a 16 MB L2 cache built from 256 x 64 KB banks behind a
16x16 wormhole-routed mesh at 65 nm, clocked with the 5 GHz core. This module
centralizes every timing and sizing constant so that all simulators (flit
level and transaction level) and all area models agree on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Cache block (line) size in bytes.
BLOCK_SIZE_BYTES = 64

#: Flit size in bits (the link is 16 B wide).
FLIT_SIZE_BITS = 128

#: Number of flits in a packet that carries only an address (read request,
#: miss/hit notification, completion notification).
CONTROL_PACKET_FLITS = 1

#: Number of flits in a packet that carries a 64 B block (write request,
#: replacement transfer, memory fill, hit-data forwarding): 32-bit address +
#: 64 B data + per-flit overhead split into five flits (Section 5).
DATA_PACKET_FLITS = 5

#: Base (uncontended) off-chip memory latency in core cycles.
MEMORY_BASE_LATENCY = 130

#: Additional pipelined memory cycles per 8 bytes transferred.
MEMORY_CYCLES_PER_8B = 4

#: Per-flit overhead bits: type(2) + size(7) + routing(8) + comm type(1).
FLIT_OVERHEAD_BITS = 18

#: Latency in cycles of one router pipeline stage (Table 1).
ROUTER_STAGE_LATENCY = 1

#: Number of virtual channels per physical channel.
VCS_PER_PC = 4

#: Flit buffer depth (flits) of each virtual channel.
FLIT_BUFFER_DEPTH = 4

#: Supported bank capacities (bytes) with their Table-1 latencies.
#: wire: per-hop global wire delay in cycles for a tile of this bank size.
#: tag: bank access latency (cycles) for tag matching only.
#: tag_repl: bank access latency (cycles) for tag matching + replacement.
_BANK_TIMING = {
    64 * 1024: {"wire": 1, "tag": 2, "tag_repl": 3},
    128 * 1024: {"wire": 2, "tag": 4, "tag_repl": 4},
    256 * 1024: {"wire": 2, "tag": 4, "tag_repl": 5},
    512 * 1024: {"wire": 3, "tag": 5, "tag_repl": 6},
}


def memory_access_latency(bytes_transferred: int = BLOCK_SIZE_BYTES) -> int:
    """Latency of one off-chip memory access moving *bytes_transferred* bytes.

    The memory is pipelined: 130 cycles plus 4 cycles per 8 B (Table 1). A
    64 B block therefore costs 130 + 32 = 162 cycles.
    """
    if bytes_transferred < 0:
        raise ConfigurationError("bytes_transferred must be non-negative")
    chunks = (bytes_transferred + 7) // 8
    return MEMORY_BASE_LATENCY + MEMORY_CYCLES_PER_8B * chunks


@dataclass(frozen=True)
class BankTiming:
    """Timing of a single cache bank of a given capacity (Table 1)."""

    capacity_bytes: int
    wire_delay: int
    tag_latency: int
    tag_replace_latency: int

    @classmethod
    def for_capacity(cls, capacity_bytes: int) -> "BankTiming":
        """Return the Table-1 timing entry for *capacity_bytes*.

        Raises :class:`ConfigurationError` for capacities the paper does not
        characterize.
        """
        try:
            entry = _BANK_TIMING[capacity_bytes]
        except KeyError:
            supported = ", ".join(str(k) for k in sorted(_BANK_TIMING))
            raise ConfigurationError(
                f"unsupported bank capacity {capacity_bytes}; "
                f"supported: {supported}"
            ) from None
        return cls(
            capacity_bytes=capacity_bytes,
            wire_delay=entry["wire"],
            tag_latency=entry["tag"],
            tag_replace_latency=entry["tag_repl"],
        )


def supported_bank_capacities() -> tuple[int, ...]:
    """Bank capacities (bytes) characterized by Table 1, ascending."""
    return tuple(sorted(_BANK_TIMING))


@dataclass(frozen=True)
class AddressLayout:
    """Bit layout of the 32-bit physical address (Section 5).

    tag (12) | index (10) | bank-column (4) | offset (6)
    """

    tag_bits: int = 12
    index_bits: int = 10
    column_bits: int = 4
    offset_bits: int = 6

    def __post_init__(self) -> None:
        total = self.tag_bits + self.index_bits + self.column_bits + self.offset_bits
        if total != 32:
            raise ConfigurationError(f"address fields must sum to 32 bits, got {total}")
        for name in ("tag_bits", "index_bits", "column_bits", "offset_bits"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")

    @property
    def num_columns(self) -> int:
        """Number of bank columns selectable by the bank-column field."""
        return 1 << self.column_bits

    @property
    def sets_per_bank(self) -> int:
        """Number of index values (sets) inside each bank column."""
        return 1 << self.index_bits


@dataclass(frozen=True)
class RouterConfig:
    """Microarchitectural parameters of one wormhole router (Table 1)."""

    num_vcs: int = VCS_PER_PC
    buffer_depth: int = FLIT_BUFFER_DEPTH
    flit_size_bits: int = FLIT_SIZE_BITS
    stage_latency: int = ROUTER_STAGE_LATENCY
    single_cycle: bool = True

    def __post_init__(self) -> None:
        if self.num_vcs <= 0:
            raise ConfigurationError("num_vcs must be positive")
        if self.buffer_depth <= 0:
            raise ConfigurationError("buffer_depth must be positive")
        if self.flit_size_bits <= 0:
            raise ConfigurationError("flit_size_bits must be positive")
        if self.stage_latency <= 0:
            raise ConfigurationError("stage_latency must be positive")

    @property
    def hop_latency(self) -> int:
        """Cycles a flit spends in one router (1 for the single-cycle design,
        5 pipeline stages otherwise)."""
        return self.stage_latency if self.single_cycle else 5 * self.stage_latency


@dataclass(frozen=True)
class SystemConfig:
    """Top-level configuration shared by the cache/network simulators."""

    total_capacity_bytes: int = 16 * 1024 * 1024
    block_size_bytes: int = BLOCK_SIZE_BYTES
    address: AddressLayout = field(default_factory=AddressLayout)
    router: RouterConfig = field(default_factory=RouterConfig)

    def __post_init__(self) -> None:
        if self.total_capacity_bytes <= 0:
            raise ConfigurationError("total_capacity_bytes must be positive")
        if self.block_size_bytes <= 0:
            raise ConfigurationError("block_size_bytes must be positive")
        if self.total_capacity_bytes % self.block_size_bytes:
            raise ConfigurationError("capacity must be a multiple of block size")

    @property
    def total_blocks(self) -> int:
        """Total number of cache blocks the L2 can hold."""
        return self.total_capacity_bytes // self.block_size_bytes


def packet_flits(carries_block: bool) -> int:
    """Number of flits of a packet (Section 5 flitization).

    Control packets (requests/notifications) fit in one 128-bit flit; packets
    that carry a 64 B block need five flits.
    """
    return DATA_PACKET_FLITS if carries_block else CONTROL_PACKET_FLITS
