"""Cross-core contract check: the two flit cores must agree statically.

The saturation parity suite proves at runtime that the object core
(:mod:`repro.noc.network` + :mod:`repro.noc.router`) and the array core
(:mod:`repro.noc.arraycore`) are bit-equivalent. That equivalence rests
on two structural agreements that a refactor can silently break long
before the parity suite runs:

* **Phase order** -- both ``step()`` methods must run
  ``_deliver_arrivals`` -> ``_inject_phase`` -> ``_replication_phase``
  -> ``_switch_phase``;
* **Tie-breaks** -- switch arbitration must rank contenders by
  ``str(port)``, and replication VC stealing must prefer
  ``(utilization, inject-last, str(port))``, in both cores.

This rule extracts each core's actual contract from the AST anchors
(the ``step`` bodies, the router's ``_in_rank`` table and replication
sort key, the array core's ``_in_sort_rank`` / ``_repl_rank``
construction) and compares both against one canonical constant -- so a
perturbation in *either* core fails lint, and a refactor that moves the
anchors out of the extractor's reach is itself a finding rather than a
silent pass.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.core import (
    Finding,
    ModuleInfo,
    ProjectIndex,
    ProjectRule,
    register,
)

#: The four cycle phases, in contract order (profiler's PHASE_METHODS).
PHASE_ORDER: tuple[str, ...] = (
    "_deliver_arrivals",
    "_inject_phase",
    "_replication_phase",
    "_switch_phase",
)

#: Canonical switch-arbitration contender rank.
SWITCH_RANK = "str(port)"

#: Canonical replication VC-steal preference key.
REPLICATION_KEY: tuple[str, ...] = ("utilization", "inject-last", "str(port)")

_PHASE_SET = frozenset(PHASE_ORDER)

#: Anchor modules: (phases from, tie-breaks from) per core.
OBJECT_PHASES_MODULE = "repro.noc.network"
OBJECT_RANKS_MODULE = "repro.noc.router"
ARRAY_MODULE = "repro.noc.arraycore"


@dataclass(frozen=True)
class Anchor:
    """One extracted contract fragment with its source location."""

    value: object
    line: int


def _in_order(nodes: list[ast.stmt]) -> Iterator[ast.AST]:
    """Source-order traversal (``ast.walk`` is breadth-first)."""
    for node in nodes:
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                continue
            yield from _in_order_expr(child)
        body = getattr(node, "body", None)
        if isinstance(body, list):
            yield from _in_order(body)
        for attr in ("orelse", "finalbody"):
            block = getattr(node, attr, None)
            if isinstance(block, list):
                yield from _in_order(block)
        for handler in getattr(node, "handlers", []) or []:
            yield from _in_order(handler.body)


def _in_order_expr(node: ast.AST) -> Iterator[ast.AST]:
    yield node
    for child in ast.iter_child_nodes(node):
        yield from _in_order_expr(child)


def _step_class(tree: ast.Module) -> ast.ClassDef | None:
    """The class defining both ``step`` and ``_inject_phase``."""
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        names = {
            item.name for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if "step" in names and "_inject_phase" in names:
            return node
    return None


def extract_phase_order(tree: ast.Module) -> Anchor | None:
    """The self-method phase calls inside ``step``, in source order."""
    cls = _step_class(tree)
    if cls is None:
        return None
    for item in cls.body:
        if isinstance(item, ast.FunctionDef) and item.name == "step":
            phases: list[str] = []
            for node in _in_order(item.body):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                    and node.func.attr in _PHASE_SET
                ):
                    phases.append(node.func.attr)
            return Anchor(value=tuple(phases), line=item.lineno)
    return None


def _canonical_rank_expr(node: ast.expr) -> str:
    """Canonical token for one tie-break key element."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id == "str":
            return "str(port)"
        if node.func.id == "utilization":
            return "utilization"
    if isinstance(node, ast.Compare) and len(node.ops) == 1:
        if isinstance(node.ops[0], ast.Eq):
            return "inject-last"
    return ast.unparse(node)


def extract_router_switch_rank(tree: ast.Module) -> Anchor | None:
    """Canonical form of the ``_in_rank`` table's value expression."""
    for node in ast.walk(tree):
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        if (
            isinstance(target, ast.Attribute)
            and target.attr == "_in_rank"
            and isinstance(value, ast.DictComp)
        ):
            return Anchor(
                value=_canonical_rank_expr(value.value), line=value.lineno
            )
    return None


def _sorted_key_tuple(call: ast.Call) -> ast.expr | None:
    """The ``key=lambda ...: <expr>`` body of a ``sorted``/``.sort`` call."""
    for keyword in call.keywords:
        if keyword.arg == "key" and isinstance(keyword.value, ast.Lambda):
            return keyword.value.body
    return None


def extract_router_replication_key(tree: ast.Module) -> Anchor | None:
    """Canonical replication sort key from the object router."""
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "sorted"
        ):
            continue
        body = _sorted_key_tuple(node)
        if not isinstance(body, ast.Tuple):
            continue
        tokens = tuple(_canonical_rank_expr(elt) for elt in body.elts)
        if tokens and tokens[0] == "utilization":
            return Anchor(value=tokens, line=node.lineno)
    return None


def _array_rank_tables(tree: ast.Module) -> tuple[Anchor | None, Anchor | None]:
    """(in_sort rank key, repl rank key) from the array core's tables.

    The tables are built as ``sorted(range(len(names)), key=lambda i:
    ...)`` over a ``names`` list of ``str(...)`` values: a single
    ``names[i]`` key is the switch rank, a ``(i == inject, names[i])``
    tuple is the replication rank.
    """
    str_lists: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and _builds_str_list(node.value):
                str_lists.add(target.id)
    switch: Anchor | None = None
    replication: Anchor | None = None
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "sorted"
        ):
            continue
        body = _sorted_key_tuple(node)
        if body is None:
            continue
        if isinstance(body, ast.Subscript):
            token = _rank_element_token(body, str_lists)
            if token is not None and switch is None:
                switch = Anchor(value=token, line=node.lineno)
        elif isinstance(body, ast.Tuple) and replication is None:
            tokens: list[str] = []
            names_based = False
            for elt in body.elts:
                if isinstance(elt, ast.Subscript):
                    token = _rank_element_token(elt, str_lists)
                    if token is not None:
                        names_based = True
                    tokens.append(token if token is not None
                                  else ast.unparse(elt))
                else:
                    tokens.append(_canonical_rank_expr(elt))
            # Only a key over the str(...)-name list is a rank table;
            # the replication *candidates* sort also uses a tuple key
            # but indexes the finished rank table, not the name list.
            if names_based:
                replication = Anchor(value=tuple(tokens), line=node.lineno)
    return switch, replication


def _builds_str_list(node: ast.expr) -> bool:
    """True for ``[str(...) for ...]`` possibly concatenated with a list."""
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        return _builds_str_list(node.left) or _builds_str_list(node.right)
    return (
        isinstance(node, ast.ListComp)
        and isinstance(node.elt, ast.Call)
        and isinstance(node.elt.func, ast.Name)
        and node.elt.func.id == "str"
    )


def _rank_element_token(node: ast.Subscript, str_lists: set[str]) -> str | None:
    if isinstance(node.value, ast.Name) and node.value.id in str_lists:
        return "str(port)"
    return None


def extract_array_contract(
    tree: ast.Module,
) -> tuple[Anchor | None, Anchor | None, Anchor | None]:
    """(phase order, switch rank, replication key) for the array core."""
    phases = extract_phase_order(tree)
    rank_key, repl_rank_key = _array_rank_tables(tree)

    # The switch contenders must actually sort by that rank table:
    # ``contenders.sort(key=lambda c: rank[c[0]])``.
    uses_rank_sort = False
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "sort"
        ):
            body = _sorted_key_tuple(node)
            if isinstance(body, ast.Subscript):
                uses_rank_sort = True
    switch = rank_key if uses_rank_sort else None

    # The replication candidates sort splices the repl-rank table in
    # after utilization: ``key=lambda p: (utilization(p), repl_rank[p])``.
    replication: Anchor | None = None
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "sorted"
        ):
            continue
        body = _sorted_key_tuple(node)
        if not isinstance(body, ast.Tuple) or len(body.elts) != 2:
            continue
        first = _canonical_rank_expr(body.elts[0])
        second = body.elts[1]
        if first == "utilization" and isinstance(second, ast.Subscript):
            if repl_rank_key is not None and isinstance(repl_rank_key.value, tuple):
                replication = Anchor(
                    value=("utilization", *repl_rank_key.value),
                    line=node.lineno,
                )
    return phases, switch, replication


@register
class CoreContractRule(ProjectRule):
    id = "contract-core-divergence"
    family = "contract"
    summary = (
        "object and array flit cores must both match the canonical "
        "phase order and stringified-port tie-breaks the bit-equivalence "
        "suite assumes; unextractable anchors are findings, not passes"
    )

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        yield from self._check_object_phases(index)
        yield from self._check_object_ranks(index)
        yield from self._check_array(index)

    def _fail(self, info: ModuleInfo, line: int, message: str) -> Finding:
        return Finding(path=info.path, line=line, col=1,
                       rule=self.id, message=message)

    def _compare(
        self,
        info: ModuleInfo,
        anchor: Anchor | None,
        expected: object,
        what: str,
    ) -> Iterator[Finding]:
        if anchor is None:
            yield self._fail(
                info, 1,
                f"could not extract {what} from {info.module}; the "
                "cross-core contract check cannot vouch for this core -- "
                "keep the anchor extractable or update the extractor",
            )
        elif anchor.value != expected:
            yield self._fail(
                info, anchor.line,
                f"{what} diverges from the canonical contract: found "
                f"{anchor.value!r}, expected {expected!r}",
            )

    def _check_object_phases(self, index: ProjectIndex) -> Iterator[Finding]:
        info = index.module(OBJECT_PHASES_MODULE)
        if info is None:
            return
        yield from self._compare(
            info, extract_phase_order(info.tree), PHASE_ORDER,
            "object-core step() phase order",
        )

    def _check_object_ranks(self, index: ProjectIndex) -> Iterator[Finding]:
        info = index.module(OBJECT_RANKS_MODULE)
        if info is None:
            return
        yield from self._compare(
            info, extract_router_switch_rank(info.tree), SWITCH_RANK,
            "object-core switch tie-break rank",
        )
        yield from self._compare(
            info, extract_router_replication_key(info.tree), REPLICATION_KEY,
            "object-core replication preference key",
        )

    def _check_array(self, index: ProjectIndex) -> Iterator[Finding]:
        info = index.module(ARRAY_MODULE)
        if info is None:
            return
        phases, switch, replication = extract_array_contract(info.tree)
        yield from self._compare(
            info, phases, PHASE_ORDER, "array-core step() phase order"
        )
        yield from self._compare(
            info, switch, SWITCH_RANK, "array-core switch tie-break rank"
        )
        yield from self._compare(
            info, replication, REPLICATION_KEY,
            "array-core replication preference key",
        )
