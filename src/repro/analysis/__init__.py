"""Static analysis: shift the simulator's runtime invariants left.

The validation harness, the telemetry triangle test, and
``verify_degraded`` all catch determinism and safety violations *after*
they execute. This package catches the source patterns that cause them at
review time instead (DESIGN.md §12):

* :mod:`repro.analysis.determinism` -- wall clock, unseeded RNG,
  ``id()``-keyed ordering, and unordered-set iteration inside the
  simulation core, whose results must be pure functions of (code, spec);
* :mod:`repro.analysis.process_safety` -- statically unpicklable
  :class:`~repro.experiments.runner.CellSpec` fields, module-global
  writes reachable from worker-side entry points, mutable defaults --
  the patterns that silently diverge under ``--jobs N`` fan-out;
* :mod:`repro.analysis.telemetry_hygiene` -- metric objects minted
  outside the registry, trace sinks constructed outside the telemetry
  layer, wall-clock or host identity leaking into sink payloads;
* :mod:`repro.analysis.discipline` -- bare/silent exception handlers and
  non-taxonomy raises in the kernel/router hot paths;
* :mod:`repro.analysis.dataflow` -- whole-program forward taint
  propagation (DESIGN.md §16): wall-clock / RNG / ``id()`` / set-order
  values must not reach sim state, telemetry payloads, or experiment
  identity, even through assignments, returns, and cross-module calls;
* :mod:`repro.analysis.catalog` -- the static telemetry-key catalog:
  every metric/series key the tree can emit, linted for collisions,
  near-miss typos, undocumented keys, and catalog staleness;
* :mod:`repro.analysis.contracts` -- the object core and the array core
  must agree on the cycle phase order and the stringified-port
  tie-breaks that the bit-equivalence suite depends on.

Run it as ``repro lint`` or ``python -m repro.analysis``. Findings are
suppressed per line with ``# repro: allow[rule-id] -- justification``;
the justification is mandatory, an empty one is itself a finding.
Project-wide findings ratchet through the shrink-only
``lint-baseline.txt`` (:mod:`repro.analysis.baseline`), mirroring the
``typegate`` mypy baseline.
"""

from repro.analysis.core import (
    AnalysisError,
    Finding,
    ModuleInfo,
    ProjectIndex,
    ProjectRule,
    Rule,
    all_rules,
    analyze_paths,
    analyze_source,
    build_index,
    iter_python_files,
    module_name_for,
    parse_suppressions,
    render_findings,
    rule_by_id,
)

# Importing the rule modules registers their rules with the registry.
from repro.analysis import catalog as _catalog  # noqa: F401
from repro.analysis import contracts as _contracts  # noqa: F401
from repro.analysis import dataflow as _dataflow  # noqa: F401
from repro.analysis import determinism as _determinism  # noqa: F401
from repro.analysis import discipline as _discipline  # noqa: F401
from repro.analysis import process_safety as _process_safety  # noqa: F401
from repro.analysis import telemetry_hygiene as _telemetry_hygiene  # noqa: F401

__all__ = [
    "AnalysisError",
    "Finding",
    "ModuleInfo",
    "ProjectIndex",
    "ProjectRule",
    "Rule",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "build_index",
    "iter_python_files",
    "module_name_for",
    "parse_suppressions",
    "render_findings",
    "rule_by_id",
]
