"""Process-safety rules: what must hold for ``--jobs N`` fan-out.

The experiment engine promises that serial, pooled, and cache-replayed
evaluations of the same :class:`~repro.experiments.runner.CellSpec` are
bit-identical. That only holds if (a) specs are plain picklable values,
so workers receive exactly what the coordinator keyed the cache on, and
(b) worker-side code keeps no hidden module state whose content could
depend on which cells a given process happened to run first.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleInfo, Rule, in_scope, register

#: Leaf annotation names that pickle by value with no surprises.
_PICKLABLE_LEAVES = frozenset({
    "int", "float", "str", "bool", "bytes", "complex", "None",
})

#: Immutable generic containers of picklable leaves.
_PICKLABLE_CONTAINERS = frozenset({
    "tuple", "frozenset", "Tuple", "FrozenSet", "Optional", "Union",
    "Literal", "Final",
})

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset({
    "append", "extend", "insert", "add", "update", "clear", "remove",
    "discard", "pop", "popitem", "setdefault", "appendleft", "extendleft",
})


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else ""
        )
        if name == "dataclass":
            return True
    return False


def _annotation_is_picklable(node: ast.AST, info: ModuleInfo) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _PICKLABLE_LEAVES or node.id in _PICKLABLE_CONTAINERS
    if isinstance(node, ast.Constant):
        # ``None`` in unions, Ellipsis in ``tuple[int, ...]``, and Literal
        # members; a string here is a forward reference we cannot check.
        return not isinstance(node.value, str) or node.value in _PICKLABLE_LEAVES
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_is_picklable(
            node.left, info
        ) and _annotation_is_picklable(node.right, info)
    if isinstance(node, ast.Subscript):
        value = node.value
        base = value.attr if isinstance(value, ast.Attribute) else (
            value.id if isinstance(value, ast.Name) else ""
        )
        if base not in _PICKLABLE_CONTAINERS:
            return False
        inner = node.slice
        elements = inner.elts if isinstance(inner, ast.Tuple) else [inner]
        return all(_annotation_is_picklable(e, info) for e in elements)
    if isinstance(node, ast.Attribute):
        origin = info.qualname(node) or ""
        return origin.rpartition(".")[2] in _PICKLABLE_CONTAINERS
    return False


@register
class SpecPicklableRule(Rule):
    id = "proc-spec-pickle"
    family = "process-safety"
    summary = (
        "fields of experiment *Spec dataclasses must be statically "
        "picklable immutable values (they cross process boundaries and "
        "key the persistent cache)"
    )

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        if not in_scope(info.module, ("repro.experiments",)):
            return
        for node in ast.walk(info.tree):
            if not (
                isinstance(node, ast.ClassDef)
                and node.name.endswith("Spec")
                and _is_dataclass(node)
            ):
                continue
            for statement in node.body:
                if not isinstance(statement, ast.AnnAssign):
                    continue
                if _annotation_is_picklable(statement.annotation, info):
                    continue
                target = (
                    statement.target.id
                    if isinstance(statement.target, ast.Name)
                    else ast.dump(statement.target)
                )
                yield self.finding(
                    info, statement,
                    f"{node.name}.{target} is not a statically picklable "
                    "immutable type; spec fields cross process boundaries "
                    "and key the result cache, so restrict them to "
                    "int/float/str/bool/bytes/None and tuple/frozenset "
                    "compositions thereof",
                )


def _module_level_names(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names


def _local_functions(tree: ast.Module) -> dict[str, ast.FunctionDef]:
    return {
        node.name: node
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _worker_entries(tree: ast.Module) -> set[str]:
    """Function names handed to a pool (``executor.submit(fn, ...)`` /
    ``pool.map(fn, ...)``) -- the roots of worker-side execution."""
    entries: set[str] = set()
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr in ("submit", "map", "imap", "imap_unordered",
                              "starmap", "apply_async"):
            if node.args and isinstance(node.args[0], ast.Name):
                entries.add(node.args[0].id)
    return entries


def _reachable(
    entries: set[str], functions: dict[str, ast.FunctionDef]
) -> set[str]:
    """Transitive closure of local-name references from *entries*."""
    seen: set[str] = set()
    frontier = [name for name in sorted(entries) if name in functions]
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        seen.add(name)
        for node in ast.walk(functions[name]):
            if isinstance(node, ast.Name) and node.id in functions:
                frontier.append(node.id)
    return seen


def _base_name(node: ast.AST) -> str | None:
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


@register
class WorkerGlobalWriteRule(Rule):
    id = "proc-worker-global-write"
    family = "process-safety"
    summary = (
        "functions reachable from a pool entry point must not write "
        "module-level or imported-module state (hidden per-process state "
        "diverges silently under --jobs N)"
    )

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        entries = _worker_entries(info.tree)
        if not entries:
            return
        functions = _local_functions(info.tree)
        module_names = _module_level_names(info.tree)
        for name in sorted(_reachable(entries, functions)):
            yield from self._check_function(
                info, functions[name], module_names
            )

    def _check_function(
        self,
        info: ModuleInfo,
        function: ast.FunctionDef,
        module_names: set[str],
    ) -> Iterator[Finding]:
        def is_module_state(target: ast.AST) -> str | None:
            base = _base_name(target)
            if base is None:
                return None
            if base in module_names:
                return f"module-level {base!r}"
            if isinstance(target, (ast.Attribute, ast.Subscript)) and (
                base in info.imports
            ):
                return f"imported {info.imports[base]!r}"
            return None

        for node in ast.walk(function):
            if isinstance(node, ast.Global):
                yield self.finding(
                    info, node,
                    f"worker-reachable {function.name}() declares "
                    f"global {', '.join(node.names)}; worker processes "
                    "must not rebind module state",
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        continue  # local rebinding is fine
                    what = is_module_state(target)
                    if what is not None:
                        yield self.finding(
                            info, target,
                            f"worker-reachable {function.name}() writes "
                            f"{what}; per-process state diverges silently "
                            "under --jobs N fan-out",
                        )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    what = is_module_state(target)
                    if what is not None and not isinstance(target, ast.Name):
                        yield self.finding(
                            info, target,
                            f"worker-reachable {function.name}() deletes "
                            f"from {what}; per-process state diverges "
                            "silently under --jobs N fan-out",
                        )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATORS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in module_names
            ):
                yield self.finding(
                    info, node,
                    f"worker-reachable {function.name}() mutates "
                    f"module-level {node.func.value.id!r} via "
                    f".{node.func.attr}(); per-process state diverges "
                    "silently under --jobs N fan-out",
                )


@register
class MutableDefaultRule(Rule):
    id = "proc-mutable-default"
    family = "process-safety"
    summary = (
        "no mutable default arguments (the shared default object leaks "
        "state across calls and across pickled closures)"
    )

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(info.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            arguments = node.args
            for default in [*arguments.defaults, *arguments.kw_defaults]:
                if default is None:
                    continue
                if self._is_mutable(default, info):
                    name = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        info, default,
                        f"{name}() has a mutable default argument; default "
                        "to None (or a tuple/frozenset) and build the "
                        "mutable value inside the call",
                    )

    @staticmethod
    def _is_mutable(node: ast.AST, info: ModuleInfo) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.SetComp, ast.DictComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return (
                node.func.id in ("list", "dict", "set", "bytearray")
                and node.func.id not in info.imports
            )
        return False
