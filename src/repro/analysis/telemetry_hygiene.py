"""Telemetry-hygiene rules: one registry, sink-mediated traces, sim time.

The observability layer's determinism contract (DESIGN.md §9) -- merged
metrics identical across serial / ``--jobs N`` / cache replay, trace
files byte-identical across runs -- rests on three source disciplines:
metric objects are minted only through a :class:`MetricsRegistry` (so
names collide loudly and snapshots merge), trace sinks are constructed
only by the telemetry layer itself (so the ``NullSink`` fast path and
``set_sink`` scoping cannot be bypassed), and nothing
host- or wall-clock-derived ever enters a sink payload.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleInfo, Rule, in_scope, register
from repro.analysis.determinism import _MONOTONIC, _WALLCLOCK

#: Raw metric classes: only the registry may instantiate them outside
#: the telemetry package (both import paths resolve here).
_METRIC_CLASSES = frozenset({
    f"repro.telemetry{infix}.{name}"
    for infix in ("", ".registry")
    for name in ("Counter", "Gauge", "Histogram")
})

#: Concrete sink classes: constructed by repro.telemetry.open_sink only.
_SINK_CLASSES = frozenset({
    f"repro.telemetry{infix}.{name}"
    for infix in ("", ".trace")
    for name in ("JsonlTraceSink", "ChromeTraceSink")
})

#: Host-identity and entropy sources: banned from the telemetry layer
#: outright -- payloads must be pure functions of the simulated run.
_HOST_IDENTITY = frozenset({
    "os.getpid", "os.getppid", "os.urandom", "os.uname",
    "socket.gethostname", "socket.getfqdn",
    "platform.node", "platform.uname",
    "uuid.uuid1", "uuid.uuid4",
    "secrets.token_hex", "secrets.token_bytes", "secrets.token_urlsafe",
})


@register
class RegistryOnlyRule(Rule):
    id = "tel-registry-only"
    family = "telemetry"
    summary = (
        "metric objects (Counter/Gauge/Histogram) are minted only "
        "through a MetricsRegistry outside repro.telemetry"
    )

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        # Layering rule: applies inside the repro package (white-box tests
        # of the telemetry layer itself construct these classes freely).
        if info.module is None or in_scope(info.module, ("repro.telemetry",)):
            return
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = info.qualname(node.func)
            if origin in _METRIC_CLASSES:
                kind = origin.rpartition(".")[2].lower()
                yield self.finding(
                    info, node,
                    f"direct {origin.rpartition('.')[2]}() construction "
                    "bypasses the registry; use "
                    f"registry.{kind}(name) so names collide loudly and "
                    "snapshots merge across processes",
                )


@register
class SinkOnlyRule(Rule):
    id = "tel-sink-only"
    family = "telemetry"
    summary = (
        "trace sinks are constructed only by repro.telemetry.open_sink "
        "(instrumentation gets the active sink via current_sink)"
    )

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        if info.module is None or in_scope(
            info.module, ("repro.telemetry", "repro.cli")
        ):
            return
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = info.qualname(node.func)
            if origin in _SINK_CLASSES:
                yield self.finding(
                    info, node,
                    f"direct {origin.rpartition('.')[2]}() construction "
                    "bypasses open_sink()/set_sink() scoping; "
                    "instrumentation must emit through "
                    "telemetry.current_sink() only",
                )


@register
class WindowSimTimeRule(Rule):
    id = "tel-window-simtime"
    family = "telemetry"
    summary = (
        "metric samples are stamped with sim time only: no wall- or "
        "monotonic-clock expression may flow into a .record()/.series() "
        "argument anywhere in repro"
    )

    #: Metric-sampling calls whose arguments index series windows or
    #: histogram buckets. Host time in one silently shears the windowed
    #: merge contract (serial == --jobs N == cache replay) even in
    #: layers where monotonic clocks are otherwise fine for wall-cost
    #: metadata, so this rule is not scope-gated.
    _SAMPLERS = ("record", "series")

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute) and func.attr in self._SAMPLERS
            ):
                continue
            arguments = list(node.args) + [kw.value for kw in node.keywords]
            origin = next(
                (
                    qual
                    for argument in arguments
                    for child in ast.walk(argument)
                    if isinstance(child, ast.Call)
                    and (qual := info.qualname(child.func)) is not None
                    and (qual in _WALLCLOCK or qual in _MONOTONIC)
                ),
                None,
            )
            if origin is not None:
                yield self.finding(
                    info, node,
                    f"{origin}() flows into .{func.attr}(): series windows "
                    "and metric samples are keyed by sim cycles, never host "
                    "time -- pass the simulation cycle instead",
                )


@register
class SinkPayloadWallClockRule(Rule):
    id = "tel-wallclock-payload"
    family = "telemetry"
    summary = (
        "nothing wall-clock-, host-, or entropy-derived inside "
        "repro.telemetry: every stamp is sim time, every payload a pure "
        "function of the run"
    )

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        if not in_scope(info.module, ("repro.telemetry",)):
            return
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = info.qualname(node.func)
            if origin in _WALLCLOCK or origin in _MONOTONIC:
                yield self.finding(
                    info, node,
                    f"{origin}() in the telemetry layer; trace stamps and "
                    "metric payloads carry sim time (cycles) only",
                )
            elif origin in _HOST_IDENTITY:
                yield self.finding(
                    info, node,
                    f"{origin}() leaks host identity or entropy into "
                    "telemetry; payloads must be pure functions of the "
                    "run (see provenance's deliberate exclusions)",
                )
