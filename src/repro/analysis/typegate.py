"""Strict-typing gate: ``mypy --strict`` on a typed core, ratcheted.

The typed core -- the modules whose interfaces everything else builds on
-- must be clean under ``mypy --strict`` with no exemptions. Every other
module may appear in an explicit baseline file (``mypy-baseline.txt`` at
the repo root): a sorted list of dotted modules still carrying strict
errors. The gate fails when a module *outside* the baseline has errors
(the untyped set can never grow) and warns on baseline entries that have
become clean (remove them -- the ratchet only turns one way;
``--update-baseline`` rewrites the file from a fresh run).

When mypy is not installed the gate reports itself skipped and passes:
the container image does not ship mypy, CI installs it.
"""

from __future__ import annotations

import importlib.util
import pathlib
import re
import subprocess
import sys
from dataclasses import dataclass, field

from repro.analysis.core import AnalysisError, module_name_for

#: Module prefixes that must be strict-clean with no baseline exemption.
TYPED_CORE: tuple[str, ...] = (
    "repro.analysis",
    "repro.errors",
    "repro.noc.arraycore",
    "repro.sim",
    "repro.stream.arrivals",
    "repro.stream.engine",
    "repro.telemetry",
    "repro.experiments.runner",
)

#: Default baseline location, relative to the repository root.
BASELINE_NAME = "mypy-baseline.txt"

_ERROR_LINE = re.compile(r"^(?P<path>[^:\n]+\.py):\d+(?::\d+)?: error:")


def in_typed_core(module: str) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in TYPED_CORE
    )


def mypy_available() -> bool:
    return importlib.util.find_spec("mypy") is not None


def load_baseline(path: str | pathlib.Path) -> list[str]:
    """Read the baseline file; raises :class:`AnalysisError` on damage.

    The file must be sorted, duplicate-free, and must not exempt any
    typed-core module -- the three properties the ratchet stands on.
    """
    file_path = pathlib.Path(path)
    if not file_path.exists():
        return []
    entries = [
        line.strip()
        for line in file_path.read_text(encoding="utf-8").splitlines()
        if line.strip() and not line.strip().startswith("#")
    ]
    problems = baseline_problems(entries)
    if problems:
        raise AnalysisError(
            f"{file_path}: " + "; ".join(problems)
        )
    return entries


def baseline_problems(entries: list[str]) -> list[str]:
    """Structural violations in a baseline entry list (empty = sound)."""
    problems: list[str] = []
    if entries != sorted(entries):
        problems.append("entries must be sorted")
    if len(entries) != len(set(entries)):
        problems.append("entries must be unique")
    core = [entry for entry in entries if in_typed_core(entry)]
    if core:
        problems.append(
            "typed-core modules cannot be baselined: " + ", ".join(core)
        )
    bad = [entry for entry in entries if not entry.startswith("repro")]
    if bad:
        problems.append("not repro modules: " + ", ".join(bad))
    return problems


def parse_mypy_errors(output: str) -> dict[str, int]:
    """Map dotted module -> strict-error count from mypy's stdout."""
    counts: dict[str, int] = {}
    for line in output.splitlines():
        match = _ERROR_LINE.match(line)
        if match is None:
            continue
        module = module_name_for(pathlib.Path(match.group("path")))
        if module is None:
            continue
        counts[module] = counts.get(module, 0) + 1
    return counts


@dataclass
class TypeGateReport:
    """Outcome of one strict-typing gate evaluation."""

    ran: bool
    #: module -> error count for modules neither clean nor baselined.
    offenders: dict[str, int] = field(default_factory=dict)
    #: baseline entries that are now clean (ratchet: remove them).
    stale: list[str] = field(default_factory=list)
    #: total strict errors inside baselined modules (informational).
    baselined_errors: int = 0

    @property
    def ok(self) -> bool:
        return not self.offenders

    def render(self) -> str:
        if not self.ran:
            return "type gate: skipped (mypy not installed; CI runs it)"
        lines = []
        for module in sorted(self.offenders):
            count = self.offenders[module]
            core = " (typed core)" if in_typed_core(module) else ""
            lines.append(
                f"type gate: {module}{core}: {count} strict error(s) and "
                "not baselined -- fix them (the baseline only shrinks)"
            )
        for module in self.stale:
            lines.append(
                f"type gate: {module} is strict-clean but still baselined; "
                f"remove it from {BASELINE_NAME} (or run --update-baseline)"
            )
        verdict = "ok" if self.ok else "FAILED"
        lines.append(
            f"type gate: {verdict} ({len(self.offenders)} offending "
            f"module(s), {len(self.stale)} stale baseline entr(ies), "
            f"{self.baselined_errors} baselined error(s))"
        )
        return "\n".join(lines)


def evaluate(error_counts: dict[str, int], baseline: list[str]) -> TypeGateReport:
    """Judge a mypy run's per-module error counts against the baseline."""
    allowed = set(baseline)
    report = TypeGateReport(ran=True)
    for module, count in sorted(error_counts.items()):
        if module in allowed:
            report.baselined_errors += count
        else:
            report.offenders[module] = count
    report.stale = sorted(allowed - set(error_counts))
    return report


def run_mypy(root: str | pathlib.Path) -> str:
    """Run ``mypy --strict`` over ``src/repro``; returns its stdout."""
    completed = subprocess.run(
        [sys.executable, "-m", "mypy", "--strict", "--no-error-summary",
         "src/repro"],
        cwd=str(root),
        capture_output=True,
        text=True,
        check=False,
    )
    return completed.stdout


def check_typegate(
    root: str | pathlib.Path = ".",
    baseline_path: str | pathlib.Path | None = None,
    update_baseline: bool = False,
) -> TypeGateReport:
    """Run the full gate: mypy (when present), baseline, ratchet."""
    root = pathlib.Path(root)
    if baseline_path is None:
        baseline_path = root / BASELINE_NAME
    baseline = load_baseline(baseline_path)
    if not mypy_available():
        return TypeGateReport(ran=False)
    error_counts = parse_mypy_errors(run_mypy(root))
    if update_baseline:
        entries = sorted(
            module for module in error_counts if not in_typed_core(module)
        )
        pathlib.Path(baseline_path).write_text(
            "# Modules still exempt from `mypy --strict` (ratcheted: this\n"
            "# list may only shrink; regenerate with\n"
            "# `repro lint --types --update-baseline`).\n"
            + "".join(entry + "\n" for entry in entries),
            encoding="utf-8",
        )
        baseline = entries
    return evaluate(error_counts, baseline)
