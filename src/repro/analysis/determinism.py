"""Determinism rules: sim results must be pure functions of (code, spec).

The engine's bit-identity contract (serial == ``--jobs N`` == cache
replay, byte-identical traces, mergeable metrics) holds only if nothing
in the simulation core reads wall clock, draws from a shared or unseeded
RNG, or lets memory-address / hash-iteration order leak into scheduling
or results. These rules flag those patterns at the source level; the
telemetry triangle test then never has to catch them at runtime.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    SIM_SCOPE,
    Finding,
    ModuleInfo,
    Rule,
    in_scope,
    register,
)

#: Time-of-day reads: never acceptable in ``repro`` source (benchmark
#: wall-cost accounting uses the monotonic clock, and only outside the
#: simulation core).
_WALLCLOCK = frozenset({
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "time.strftime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: Monotonic/process clocks: fine for wall-cost metadata in the
#: orchestration layer (``RunResult.wall_s`` is ``compare=False``), but
#: inside the simulation core the only clock is ``Simulator.now``.
_MONOTONIC = frozenset({
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
})

#: Module-level ``random`` functions all share one hidden global RNG:
#: any caller perturbs every other caller's stream, so results stop
#: being a function of the caller's own seed.
_GLOBAL_RANDOM = frozenset({
    "random.random", "random.randint", "random.randrange", "random.choice",
    "random.choices", "random.shuffle", "random.sample", "random.uniform",
    "random.gauss", "random.normalvariate", "random.expovariate",
    "random.betavariate", "random.triangular", "random.seed",
    "random.getrandbits", "random.randbytes",
    "numpy.random.rand", "numpy.random.randn", "numpy.random.randint",
    "numpy.random.random", "numpy.random.choice", "numpy.random.shuffle",
    "numpy.random.permutation", "numpy.random.uniform", "numpy.random.normal",
    "numpy.random.seed", "numpy.random.standard_normal",
    "numpy.random.exponential", "numpy.random.poisson",
    "numpy.random.random_sample", "numpy.random.beta", "numpy.random.gamma",
})

#: RNG constructors that must be given an explicit seed argument.
_SEEDED_CONSTRUCTORS = frozenset({
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.Generator",
})


def _is_builtin_id_call(node: ast.AST, info: ModuleInfo) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
        and "id" not in info.imports
    )


def _contains_id_call(node: ast.AST, info: ModuleInfo) -> bool:
    return any(_is_builtin_id_call(child, info) for child in ast.walk(node))


def _is_set_expression(node: ast.AST, info: ModuleInfo) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return (
            node.func.id in ("set", "frozenset")
            and node.func.id not in info.imports
        )
    return False


@register
class WallClockRule(Rule):
    id = "det-wallclock"
    family = "determinism"
    summary = (
        "no wall-clock reads: time-of-day anywhere in repro, any host "
        "clock inside the simulation core (sim/noc/core/cache/faults)"
    )

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        if in_scope(info.module, ("repro.telemetry",)):
            return  # tel-wallclock-payload owns the telemetry layer.
        sim = in_scope(info.module, SIM_SCOPE)
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = info.qualname(node.func)
            if origin in _WALLCLOCK:
                yield self.finding(
                    info, node,
                    f"{origin}() reads the wall clock; results and artifacts "
                    "must be functions of (code, spec) -- use sim time, or "
                    "the monotonic clock outside the simulation core",
                )
            elif sim and origin in _MONOTONIC:
                yield self.finding(
                    info, node,
                    f"{origin}() inside the simulation core; the only clock "
                    "here is Simulator.now (cycles)",
                )


@register
class UnseededRandomRule(Rule):
    id = "det-unseeded-random"
    family = "determinism"
    summary = (
        "no shared/unseeded RNGs: module-level random.* calls, Random() "
        "or default_rng() without a seed, random.SystemRandom"
    )

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = info.qualname(node.func)
            if origin is None:
                continue
            if origin in _GLOBAL_RANDOM:
                yield self.finding(
                    info, node,
                    f"{origin}() draws from the hidden process-global RNG; "
                    "take a seeded random.Random and draw from it",
                )
            elif origin in _SEEDED_CONSTRUCTORS and not (
                node.args or node.keywords
            ):
                yield self.finding(
                    info, node,
                    f"{origin}() without a seed is entropy-seeded; pass an "
                    "explicit seed derived from the spec",
                )
            elif origin == "random.SystemRandom":
                yield self.finding(
                    info, node,
                    "random.SystemRandom is OS-entropy backed and can never "
                    "replay; use a seeded random.Random",
                )


@register
class IdOrderRule(Rule):
    id = "det-id-order"
    family = "determinism"
    summary = (
        "no id()-derived ordering in the simulation core: id() in sort "
        "keys or collected into sets (addresses vary run to run)"
    )

    _SORTERS = ("sorted", "min", "max")

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        if not in_scope(info.module, SIM_SCOPE):
            return
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(info, node)
            elif isinstance(node, ast.SetComp):
                if _contains_id_call(node.elt, info):
                    yield self.finding(
                        info, node,
                        "set comprehension over id() values: iterating or "
                        "ordering it leaks memory-address order into the run",
                    )
            elif isinstance(node, ast.Set):
                if any(_contains_id_call(elt, info) for elt in node.elts):
                    yield self.finding(
                        info, node,
                        "set literal of id() values: iterating or ordering "
                        "it leaks memory-address order into the run",
                    )

    def _check_call(self, info: ModuleInfo, node: ast.Call) -> Iterator[Finding]:
        func = node.func
        is_sorter = (
            isinstance(func, ast.Name)
            and func.id in self._SORTERS
            and func.id not in info.imports
        ) or (isinstance(func, ast.Attribute) and func.attr == "sort")
        if is_sorter:
            for keyword in node.keywords:
                if keyword.arg != "key":
                    continue
                value = keyword.value
                uses_id = _contains_id_call(value, info) or (
                    isinstance(value, ast.Name)
                    and value.id == "id"
                    and "id" not in info.imports
                )
                if uses_id:
                    yield self.finding(
                        info, node,
                        "sorting by id() orders by memory address, which "
                        "varies across runs and processes; sort by a stable "
                        "field instead",
                    )
        if (
            isinstance(func, ast.Name)
            and func.id in ("set", "frozenset")
            and func.id not in info.imports
            and any(_contains_id_call(arg, info) for arg in node.args)
        ):
            yield self.finding(
                info, node,
                "building a set of id() values: iterating or ordering it "
                "leaks memory-address order into the run",
            )
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "add"
            and any(_is_builtin_id_call(arg, info) for arg in node.args)
        ):
            yield self.finding(
                info, node,
                "collecting id() values into a set: iterating or ordering "
                "it leaks memory-address order into the run",
            )


@register
class UnorderedReduceRule(Rule):
    id = "det-unordered-reduce"
    family = "determinism"
    summary = (
        "no reductions over set expressions in the simulation core: "
        "sum()/math.fsum() accumulate in hash order, so float results "
        "(and any order-sensitive fold) vary with the hash seed"
    )

    _REDUCERS = ("sum",)
    _QUAL_REDUCERS = frozenset({"math.fsum", "numpy.sum", "numpy.prod"})

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        if not in_scope(info.module, SIM_SCOPE):
            return
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            named_reducer = (
                isinstance(func, ast.Name)
                and func.id in self._REDUCERS
                and func.id not in info.imports
            )
            qual_reducer = info.qualname(func) in self._QUAL_REDUCERS
            if not named_reducer and not qual_reducer:
                continue
            if _is_set_expression(node.args[0], info):
                yield self.finding(
                    info, node,
                    "reducing a set expression accumulates in hash order; "
                    "reduce a sorted sequence (or a list/tuple built in a "
                    "deterministic order) instead",
                )


#: numpy sort entry points whose default algorithm (introsort) is
#: unstable: equal keys land in an algorithm-dependent order. A
#: bit-identical simulation core may only sort with an explicit
#: ``kind="stable"`` (or ``"mergesort"``, its alias) so every tie-break
#: is part of the spec, not of the sort implementation.
_NP_SORTS = frozenset({
    "numpy.sort",
    "numpy.argsort",
    "numpy.ma.sort",
    "numpy.ma.argsort",
})


@register
class NumpyUnstableSortRule(Rule):
    id = "det-np-unstable-sort"
    family = "determinism"
    summary = (
        "no unstable numpy sorts in the simulation core: np.sort / "
        "np.argsort (and the .argsort() method) default to introsort, "
        'whose tie order is implementation-defined -- pass kind="stable"'
    )

    _STABLE_KINDS = ("stable", "mergesort")

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        if not in_scope(info.module, SIM_SCOPE):
            return
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = info.qualname(node.func)
            named = origin in _NP_SORTS
            # The .argsort() method form: the receiver's type is not
            # resolvable statically, but the name is numpy-specific
            # (list.sort is stable and has no argsort).
            method = (
                origin is None
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "argsort"
            )
            if (named or method) and not self._stable_kind(node):
                yield self.finding(
                    info, node,
                    "numpy's default sort kind is unstable, so equal keys "
                    "land in implementation-defined order; pass "
                    'kind="stable" (and make every tie-break explicit in '
                    "the key) or sort in plain Python",
                )

    def _stable_kind(self, node: ast.Call) -> bool:
        for keyword in node.keywords:
            if keyword.arg == "kind":
                value = keyword.value
                return (
                    isinstance(value, ast.Constant)
                    and value.value in self._STABLE_KINDS
                )
        return False


@register
class SetIterationRule(Rule):
    id = "det-set-iter"
    family = "determinism"
    summary = (
        "no direct iteration over set displays/constructors in the "
        "simulation core (hash order is not part of the spec)"
    )

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        if not in_scope(info.module, SIM_SCOPE):
            return
        for node in ast.walk(info.tree):
            iters: list[ast.AST] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple")
                and node.func.id not in info.imports
                and node.args
            ):
                iters.append(node.args[0])
            for candidate in iters:
                if _is_set_expression(candidate, info):
                    yield self.finding(
                        info, candidate,
                        "iterating a set expression directly: element order "
                        "follows hashes, not the spec -- sort it (or use a "
                        "dict/tuple, which preserve insertion order)",
                    )
