"""Exception-discipline rules: the kernel and routers fail loudly.

A swallowed exception in the event loop or a router pipeline does not
crash the run -- it silently corrupts it: a flit goes missing, a credit
leaks, and the failure surfaces thousands of cycles later as a stall the
validation harness has to bisect. These rules keep the simulation core
honest: no bare handlers, no silent swallows, no blanket ``Exception``
catches in hot paths, and raises drawn from the :mod:`repro.errors`
taxonomy so callers can distinguish protocol violations from kernel
bugs.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    SIM_SCOPE,
    Finding,
    ModuleInfo,
    Rule,
    in_scope,
    register,
)

#: Exception types a raise in the simulation core must not use: the
#: repro.errors taxonomy exists precisely to replace them. (ValueError /
#: KeyError / TypeError on argument validation stay idiomatic.)
_FORBIDDEN_RAISES = frozenset({
    "Exception", "BaseException", "RuntimeError", "SystemError",
})

_BROAD_CATCHES = frozenset({"Exception", "BaseException"})


def _handler_types(handler: ast.ExceptHandler) -> list[ast.expr]:
    if handler.type is None:
        return []
    if isinstance(handler.type, ast.Tuple):
        return list(handler.type.elts)
    return [handler.type]


def _is_silent(handler: ast.ExceptHandler) -> bool:
    """True when the handler body does nothing at all."""
    return all(
        isinstance(statement, ast.Pass)
        or (
            isinstance(statement, ast.Expr)
            and isinstance(statement.value, ast.Constant)
        )
        for statement in handler.body
    )


@register
class BareExceptRule(Rule):
    id = "exc-bare"
    family = "exceptions"
    summary = "no bare `except:` anywhere (it even swallows SystemExit)"

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(info.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    info, node,
                    "bare `except:` catches everything including "
                    "SystemExit and KeyboardInterrupt; name the exception "
                    "types you mean",
                )


@register
class SilentSwallowRule(Rule):
    id = "exc-silent"
    family = "exceptions"
    summary = (
        "no silent swallows: empty handler bodies for broad catches "
        "anywhere, for any catch inside the simulation core"
    )

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        sim = in_scope(info.module, SIM_SCOPE)
        for node in ast.walk(info.tree):
            if not (isinstance(node, ast.ExceptHandler) and _is_silent(node)):
                continue
            names = [
                name.id if isinstance(name, ast.Name) else "?"
                for name in _handler_types(node)
            ]
            broad = node.type is None or any(
                name in _BROAD_CATCHES for name in names
            )
            if broad or sim:
                caught = ", ".join(names) if names else "everything"
                yield self.finding(
                    info, node,
                    f"handler for {caught} swallows the exception without "
                    "acting on it; a dropped error in simulation code "
                    "surfaces later as silent corruption -- handle it, "
                    "count it, or let it propagate",
                )


@register
class BroadHotPathCatchRule(Rule):
    id = "exc-broad-hotpath"
    family = "exceptions"
    summary = (
        "no `except Exception` / `except BaseException` inside the "
        "simulation core; catch repro.errors taxonomy types"
    )

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        if not in_scope(info.module, SIM_SCOPE):
            return
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            for name in _handler_types(node):
                if isinstance(name, ast.Name) and name.id in _BROAD_CATCHES:
                    yield self.finding(
                        info, node,
                        f"`except {name.id}` in the simulation core also "
                        "catches kernel bugs (SimulationError) it should "
                        "never recover from; catch the specific "
                        "repro.errors types instead",
                    )


@register
class TaxonomyRaiseRule(Rule):
    id = "exc-taxonomy"
    family = "exceptions"
    summary = (
        "raises in the simulation core use the repro.errors taxonomy, "
        "not Exception/RuntimeError"
    )

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        if not in_scope(info.module, SIM_SCOPE):
            return
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            target = node.exc
            if isinstance(target, ast.Call):
                target = target.func
            if isinstance(target, ast.Name) and target.id in _FORBIDDEN_RAISES:
                yield self.finding(
                    info, node,
                    f"raise {target.id} in the simulation core; use the "
                    "repro.errors taxonomy (SimulationError, ProtocolError, "
                    "RoutingError, ...) so callers can tell protocol "
                    "violations from kernel bugs",
                )
