"""``python -m repro.analysis`` -- the standalone analyzer entry point.

Exit status: 0 with no findings (and a passing type gate when
``--types`` is given), 1 otherwise. ``repro lint`` is the same engine
behind the package CLI.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis import all_rules, analyze_paths, render_findings
from repro.analysis.typegate import check_typegate


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Determinism and process-safety static analysis for the repro "
            "tree (see DESIGN.md §12)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every registered rule and exit",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="finding output format (default: text)",
    )
    parser.add_argument(
        "--types", action="store_true",
        help="also run the mypy --strict typed-core gate with the "
             "ratcheted baseline",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="with --types: rewrite mypy-baseline.txt from this run",
    )
    return parser


def list_rules() -> str:
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.id:24s} [{rule.family}] {rule.summary}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0
    findings = analyze_paths(args.paths)
    status = 0
    if args.format == "json":
        print(json.dumps([finding.payload() for finding in findings],
                         indent=2, sort_keys=True))
    else:
        print(render_findings(findings))
    if findings:
        status = 1
    if args.types or args.update_baseline:
        report = check_typegate(update_baseline=args.update_baseline)
        print(report.render(), file=sys.stderr)
        if not report.ok:
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
