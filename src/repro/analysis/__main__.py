"""``python -m repro.analysis`` -- the standalone analyzer entry point.

Exit status: 0 with no findings above the lint baseline (and a passing
type gate when ``--types`` is given), 1 otherwise. ``repro lint`` is
the same engine behind the package CLI.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Sequence

from repro.analysis import all_rules, analyze_paths, build_index, render_findings
from repro.analysis.baseline import BASELINE_NAME, check_baseline
from repro.analysis.catalog import generate_catalog_source
from repro.analysis.sarif import render_sarif
from repro.analysis.typegate import check_typegate

#: Where the generated telemetry catalog lives, relative to the root.
CATALOG_PATH = "src/repro/telemetry/catalog.py"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Determinism, process-safety, dataflow-taint, telemetry-"
            "catalog, and cross-core contract static analysis for the "
            "repro tree (see DESIGN.md §12 and §16)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every registered rule and exit",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="finding output format (default: text)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help=f"judge findings against a shrink-only {BASELINE_NAME} "
             "ratchet instead of failing on any finding",
    )
    parser.add_argument(
        "--update-lint-baseline", action="store_true",
        help="rewrite the lint baseline from this run's findings "
             f"(default file: {BASELINE_NAME})",
    )
    parser.add_argument(
        "--write-catalog", action="store_true",
        help=f"regenerate {CATALOG_PATH} from the analyzed tree and exit",
    )
    parser.add_argument(
        "--types", action="store_true",
        help="also run the mypy --strict typed-core gate with the "
             "ratcheted baseline",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="with --types: rewrite mypy-baseline.txt from this run",
    )
    return parser


def list_rules() -> str:
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.id:24s} [{rule.family}] {rule.summary}")
    return "\n".join(lines)


def write_catalog(paths: Sequence[str], out_path: str = CATALOG_PATH) -> str:
    """Regenerate the telemetry catalog module; returns the path."""
    index, _, _ = build_index(paths)
    pathlib.Path(out_path).write_text(
        generate_catalog_source(index), encoding="utf-8"
    )
    return out_path


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0
    if args.write_catalog:
        out_path = write_catalog(args.paths)
        print(f"wrote {out_path}")
        return 0
    findings = analyze_paths(args.paths)
    status = 0
    baseline_path = args.baseline
    if args.update_lint_baseline and baseline_path is None:
        baseline_path = BASELINE_NAME
    if baseline_path is not None:
        report = check_baseline(
            findings, baseline_path, update=args.update_lint_baseline
        )
        visible = report.offenders
        if not report.ok or report.stale:
            status = 1
        if args.format == "text":
            print(report.render())
        elif args.format == "json":
            print(json.dumps([f.payload() for f in visible],
                             indent=2, sort_keys=True))
        else:
            print(render_sarif(visible), end="")
    else:
        if args.format == "json":
            print(json.dumps([finding.payload() for finding in findings],
                             indent=2, sort_keys=True))
        elif args.format == "sarif":
            print(render_sarif(findings), end="")
        else:
            print(render_findings(findings))
        if findings:
            status = 1
    if args.types or args.update_baseline:
        report = check_typegate(update_baseline=args.update_baseline)
        print(report.render(), file=sys.stderr)
        if not report.ok:
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
