"""SARIF 2.1.0 rendering of lint findings.

`Static Analysis Results Interchange Format
<https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_ is
what GitHub code scanning ingests: uploading ``repro lint --format
sarif`` as a CI artifact turns findings into inline PR annotations.
The document is fully deterministic -- rules sorted by id, results in
(path, line, rule) order, no timestamps -- so two runs over the same
tree produce byte-identical SARIF and artifact diffs stay reviewable.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.analysis.core import Finding, all_rules

#: Tool metadata embedded in every run object.
_TOOL_NAME = "repro-lint"
_INFO_URI = "https://example.invalid/repro/DESIGN.md#12-static-analysis"

#: Findings from the analyzer machinery itself rather than a registered
#: rule; they need synthetic rule metadata in the SARIF rule table.
_SYNTHETIC_RULES = {
    "parse-error": "the file does not parse as python",
    "bad-suppression": (
        "a `# repro: allow[...]` directive is malformed, names an "
        "unknown rule, or lacks a justification"
    ),
}


def _rule_entries(findings: Sequence[Finding]) -> list[dict[str, object]]:
    entries: dict[str, dict[str, object]] = {}
    for rule in all_rules():
        entries[rule.id] = {
            "id": rule.id,
            "shortDescription": {"text": rule.summary},
            "properties": {"family": rule.family},
        }
    for rule_id, summary in _SYNTHETIC_RULES.items():
        entries[rule_id] = {
            "id": rule_id,
            "shortDescription": {"text": summary},
            "properties": {"family": "analyzer"},
        }
    used = {finding.rule for finding in findings}
    for rule_id in sorted(used - set(entries)):
        entries[rule_id] = {
            "id": rule_id,
            "shortDescription": {"text": rule_id},
            "properties": {"family": "unknown"},
        }
    return [entries[rule_id] for rule_id in sorted(entries)]


def _result(finding: Finding, rule_index: dict[str, int]) -> dict[str, object]:
    return {
        "ruleId": finding.rule,
        "ruleIndex": rule_index[finding.rule],
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col,
                    },
                }
            }
        ],
    }


def render_sarif(findings: Sequence[Finding]) -> str:
    """A SARIF 2.1.0 document for *findings*, deterministically ordered."""
    ordered = sorted(findings)
    rules = _rule_entries(ordered)
    rule_index = {
        str(entry["id"]): position for position, entry in enumerate(rules)
    }
    document = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": _INFO_URI,
                        "rules": rules,
                    }
                },
                "results": [
                    _result(finding, rule_index) for finding in ordered
                ],
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
