"""Shrink-only lint-finding baseline: the ``typegate`` ratchet for lint.

New rule families land against an existing tree; grandfathering their
historical findings must not hide *new* ones. ``lint-baseline.txt`` at
the repository root lists the findings that predate a rule (as
``path:rule:count`` entries). The gate fails when a (path, rule) pair
has more findings than its baseline entry allows or is not listed at
all; it flags entries whose counts have dropped (tighten them -- the
ratchet only turns one way). ``repro lint --update-lint-baseline``
rewrites the file from a fresh run.

The tree currently lints clean, so the shipped baseline is empty --
the file exists to pin the ratchet's starting point at zero.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field

from repro.analysis.core import AnalysisError, Finding

#: Default baseline location, relative to the repository root.
BASELINE_NAME = "lint-baseline.txt"

_HEADER = (
    "# Lint findings grandfathered before their rule existed, as\n"
    "# path:rule:count entries (ratcheted: counts may only shrink;\n"
    "# regenerate with `repro lint --update-lint-baseline`).\n"
)


def parse_entry(line: str) -> tuple[str, str, int]:
    """Split one ``path:rule:count`` baseline line."""
    path, _, rest = line.rpartition(":")
    prefix, _, rule = path.rpartition(":")
    if not prefix or not rule or not rest.isdigit() or int(rest) < 1:
        raise AnalysisError(
            f"malformed lint-baseline entry {line!r}; "
            "expected path:rule:count with count >= 1"
        )
    return prefix, rule, int(rest)


def load_baseline(path: str | pathlib.Path) -> dict[tuple[str, str], int]:
    """Read the baseline; raises :class:`AnalysisError` on damage."""
    file_path = pathlib.Path(path)
    if not file_path.exists():
        return {}
    lines = [
        line.strip()
        for line in file_path.read_text(encoding="utf-8").splitlines()
        if line.strip() and not line.strip().startswith("#")
    ]
    if lines != sorted(lines):
        raise AnalysisError(f"{file_path}: entries must be sorted")
    if len(lines) != len(set(lines)):
        raise AnalysisError(f"{file_path}: entries must be unique")
    allowed: dict[tuple[str, str], int] = {}
    for line in lines:
        file_name, rule, count = parse_entry(line)
        key = (file_name, rule)
        if key in allowed:
            raise AnalysisError(
                f"{file_path}: duplicate entry for {file_name}:{rule}"
            )
        allowed[key] = count
    return allowed


def count_findings(findings: list[Finding]) -> dict[tuple[str, str], int]:
    counts: dict[tuple[str, str], int] = {}
    for finding in findings:
        key = (finding.path, finding.rule)
        counts[key] = counts.get(key, 0) + 1
    return counts


@dataclass
class BaselineReport:
    """Outcome of judging one lint run against the baseline."""

    #: findings above their baseline allowance (these fail the gate).
    offenders: list[Finding] = field(default_factory=list)
    #: baseline keys whose counts dropped (ratchet: tighten the file).
    stale: list[str] = field(default_factory=list)
    #: findings absorbed by baseline entries (informational).
    absorbed: int = 0

    @property
    def ok(self) -> bool:
        return not self.offenders

    def render(self) -> str:
        lines = [finding.render() for finding in self.offenders]
        for entry in self.stale:
            lines.append(
                f"lint baseline: {entry} has fewer findings than baselined; "
                f"shrink {BASELINE_NAME} (or run --update-lint-baseline)"
            )
        verdict = "ok" if self.ok else "FAILED"
        noun = "finding" if len(self.offenders) == 1 else "findings"
        lines.append(
            f"repro lint: {verdict} ({len(self.offenders)} {noun} above "
            f"baseline, {self.absorbed} baselined, "
            f"{len(self.stale)} stale entr(ies))"
        )
        return "\n".join(lines)


def evaluate(
    findings: list[Finding], allowed: dict[tuple[str, str], int]
) -> BaselineReport:
    """Judge *findings* against the baseline allowances.

    Within one (path, rule) bucket the allowance absorbs the *first*
    ``count`` findings in location order -- deterministic, and biased
    toward surfacing the newest (usually lowest-in-file-is-oldest is
    not knowable statically, so location order is the stable choice).
    """
    report = BaselineReport()
    counts = count_findings(findings)
    seen: dict[tuple[str, str], int] = {}
    for finding in sorted(findings):
        key = (finding.path, finding.rule)
        used = seen.get(key, 0)
        if used < allowed.get(key, 0):
            seen[key] = used + 1
            report.absorbed += 1
        else:
            report.offenders.append(finding)
    for (path, rule), allowance in sorted(allowed.items()):
        if counts.get((path, rule), 0) < allowance:
            report.stale.append(f"{path}:{rule}:{allowance}")
    return report


def write_baseline(
    findings: list[Finding], path: str | pathlib.Path
) -> None:
    """Rewrite the baseline file from a fresh run's findings."""
    counts = count_findings(findings)
    entries = sorted(
        f"{file_name}:{rule}:{count}"
        for (file_name, rule), count in counts.items()
    )
    pathlib.Path(path).write_text(
        _HEADER + "".join(entry + "\n" for entry in entries),
        encoding="utf-8",
    )


def check_baseline(
    findings: list[Finding],
    baseline_path: str | pathlib.Path,
    update: bool = False,
) -> BaselineReport:
    """Full gate: load (or rewrite) the baseline and judge *findings*."""
    if update:
        write_baseline(findings, baseline_path)
    return evaluate(findings, load_baseline(baseline_path))
