"""Analyzer framework: findings, rules, suppressions, and the file walk.

A :class:`Rule` inspects one parsed module (:class:`ModuleInfo`) and
yields :class:`Finding` objects. Rules register themselves into a global
registry at import time via :func:`register`; :func:`analyze_paths` walks
a file tree, parses each module once, runs every (selected) rule over it,
and filters findings through the suppression comments.

Suppression syntax (checked, not free-form)::

    risky_line()  # repro: allow[rule-id] -- why this is a vetted false positive

applies to its own line; ``allow-file[rule-id]`` anywhere in the file
applies to the whole file. The justification after ``--`` is mandatory:
a suppression without one is reported as a ``bad-suppression`` finding,
so every exemption in the tree carries its own review trail. Unknown
rule ids in a directive are likewise findings -- a typo must not
silently disable nothing.
"""

from __future__ import annotations

import ast
import io
import pathlib
import re
import tokenize
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from repro.errors import ReproError


class AnalysisError(ReproError):
    """The static analyzer was configured or driven inconsistently."""


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def payload(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


#: Packages whose results must be pure functions of (code, spec): the
#: simulation core. Determinism and exception-discipline rules key off it.
SIM_SCOPE: tuple[str, ...] = (
    "repro.sim",
    "repro.noc",
    "repro.core",
    "repro.cache",
    "repro.faults",
)


def in_scope(module: str | None, prefixes: Sequence[str]) -> bool:
    """True when dotted *module* lives under any of *prefixes*."""
    if module is None:
        return False
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in prefixes
    )


@dataclass
class ModuleInfo:
    """One parsed module plus the lookup tables rules share."""

    path: str
    module: str | None
    tree: ast.Module
    source: str
    #: Local name -> fully-qualified dotted origin, from import statements.
    imports: dict[str, str] = field(default_factory=dict)
    _parents: dict[int, ast.AST] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.imports = _import_table(self.tree, self.module)
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The syntactic parent of *node* (None for the module root)."""
        return self._parents.get(id(node))

    def qualname(self, node: ast.AST) -> str | None:
        """Resolve a Name/Attribute chain to a dotted origin, or None.

        ``time.time`` under ``import time`` resolves to ``"time.time"``;
        ``perf_counter`` under ``from time import perf_counter`` to
        ``"time.perf_counter"``; a local name resolves to None.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        origin = self.imports.get(node.id)
        if origin is None:
            return None
        return ".".join([origin, *reversed(parts)]) if parts else origin


def _import_table(tree: ast.Module, module: str | None) -> dict[str, str]:
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                table[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname is None and "." in alias.name:
                    # ``import a.b`` binds ``a``; record the root package.
                    table[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level and module is not None:
                package = module.split(".")
                # level 1 = current package for __init__, else the parent.
                anchor = package[: len(package) - node.level]
                base = ".".join([*anchor, base] if base else anchor)
            for alias in node.names:
                if alias.name == "*":
                    continue
                table[alias.asname or alias.name] = (
                    f"{base}.{alias.name}" if base else alias.name
                )
    return table


@dataclass
class ProjectIndex:
    """Every parsed module of one analysis run, plus shared context.

    Per-module rules see one :class:`ModuleInfo` at a time; project rules
    (taint flows across call edges, telemetry-key catalogs, cross-core
    contracts) see the whole index. ``design_text`` carries the DESIGN.md
    schema tables when the run is anchored in a repo checkout; it is None
    for synthetic single-module runs (fixtures, fuzzer cases), which
    disables the documentation-coverage rule there.
    """

    modules: tuple[ModuleInfo, ...]
    design_text: str | None = None

    def __post_init__(self) -> None:
        self._by_module: dict[str, ModuleInfo] = {
            info.module: info for info in self.modules if info.module is not None
        }

    def module(self, name: str) -> ModuleInfo | None:
        """The parsed module registered under dotted *name*, if any."""
        return self._by_module.get(name)

    def in_scope(self, prefixes: Sequence[str]) -> Iterator[ModuleInfo]:
        """Modules whose dotted name falls under any of *prefixes*."""
        for info in self.modules:
            if in_scope(info.module, prefixes):
                yield info


class Rule:
    """Base class: one named check over one module."""

    #: Stable kebab-case identifier used in output and suppressions.
    id: str = ""
    #: Rule family (``determinism`` | ``process-safety`` | ``telemetry`` |
    #: ``exceptions`` | ``dataflow`` | ``catalog`` | ``contract``) -- the
    #: DESIGN.md §12/§16 grouping.
    family: str = ""
    #: One-line description shown by ``repro lint --list-rules``.
    summary: str = ""

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, info: ModuleInfo, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=info.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
        )


class ProjectRule(Rule):
    """A rule that inspects the whole :class:`ProjectIndex` at once.

    Project rules run after every module has been parsed; their findings
    still anchor to concrete file/line locations so the suppression
    machinery applies unchanged.
    """

    def check(self, info: ModuleInfo) -> Iterator[Finding]:
        return iter(())

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        raise NotImplementedError

    def finding_at(
        self, info: ModuleInfo, node: ast.AST, message: str
    ) -> Finding:
        return self.finding(info, node, message)


_RULES: dict[str, Rule] = {}


def register(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and index a rule by its id."""
    rule = rule_class()
    if not rule.id or not rule.family or not rule.summary:
        raise AnalysisError(
            f"rule {rule_class.__name__} must define id, family, and summary"
        )
    if rule.id in _RULES:
        raise AnalysisError(f"duplicate rule id {rule.id!r}")
    _RULES[rule.id] = rule
    return rule_class


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, ordered by id."""
    return tuple(_RULES[rule_id] for rule_id in sorted(_RULES))


def rule_by_id(rule_id: str) -> Rule:
    try:
        return _RULES[rule_id]
    except KeyError:
        raise AnalysisError(
            f"unknown rule {rule_id!r}; known: {sorted(_RULES)}"
        ) from None


# -- suppressions -------------------------------------------------------------

#: Matches ``repro: allow[ids]`` / ``repro: allow-file[ids]`` directives.
_DIRECTIVE = re.compile(
    r"#\s*repro:\s*(?P<kind>allow(?:-file)?)\s*"
    r"\[(?P<rules>[^\]]*)\]\s*(?:--\s*(?P<why>.*))?"
)
_ANY_DIRECTIVE = re.compile(r"#\s*repro\s*:")


@dataclass
class Suppressions:
    """Parsed ``repro: allow`` directives for one file."""

    #: line number -> rule ids allowed on that line.
    by_line: dict[int, set[str]] = field(default_factory=dict)
    #: rule ids allowed anywhere in the file.
    file_wide: set[str] = field(default_factory=set)
    #: malformed-directive findings (missing justification, unknown rule).
    problems: list[Finding] = field(default_factory=list)

    def allows(self, finding: Finding) -> bool:
        if finding.rule in self.file_wide:
            return True
        return finding.rule in self.by_line.get(finding.line, set())


def parse_suppressions(path: str, source: str) -> Suppressions:
    """Extract and validate every suppression directive in *source*."""
    out = Suppressions()

    def problem(line: int, message: str) -> None:
        out.problems.append(
            Finding(path=path, line=line, col=1,
                    rule="bad-suppression", message=message)
        )

    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return out
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        comment = token.string
        if not _ANY_DIRECTIVE.search(comment):
            continue
        line = token.start[0]
        match = _DIRECTIVE.search(comment)
        if match is None:
            problem(line, f"unparseable repro directive: {comment.strip()!r}")
            continue
        rule_ids = [
            part.strip() for part in match.group("rules").split(",") if part.strip()
        ]
        why = (match.group("why") or "").strip()
        if not rule_ids:
            problem(line, "suppression names no rule ids")
            continue
        if not why:
            problem(
                line,
                f"suppression of {','.join(rule_ids)} has no justification "
                "(write `# repro: allow[rule] -- reason`)",
            )
            continue
        unknown = [rule_id for rule_id in rule_ids if rule_id not in _RULES]
        if unknown:
            problem(
                line,
                f"suppression names unknown rule(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(_RULES))}",
            )
            continue
        if match.group("kind") == "allow-file":
            out.file_wide.update(rule_ids)
        else:
            out.by_line.setdefault(line, set()).update(rule_ids)
    return out


# -- driving ------------------------------------------------------------------


def module_name_for(path: pathlib.Path) -> str | None:
    """Dotted module name for *path*, keyed off a ``src/`` or package root."""
    parts = list(path.parts)
    if "repro" not in parts:
        return None
    dotted = parts[parts.index("repro"):]
    if dotted[-1].endswith(".py"):
        dotted[-1] = dotted[-1][:-3]
    if dotted[-1] == "__init__":
        dotted.pop()
    return ".".join(dotted)


def analyze_source(
    path: str,
    source: str,
    module: str | None = None,
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Run *rules* (default: all) over one module's source text.

    Project rules see a one-module index, so single-module callers
    (fixtures, the fuzzer) exercise the dataflow families too.
    Suppressed findings are dropped; malformed suppressions are reported
    as ``bad-suppression`` findings. A syntax error yields a single
    ``parse-error`` finding rather than raising.
    """
    selected = tuple(rules) if rules is not None else all_rules()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(path=path, line=exc.lineno or 1, col=(exc.offset or 0) + 1,
                    rule="parse-error", message=f"syntax error: {exc.msg}")
        ]
    info = ModuleInfo(path=path, module=module, tree=tree, source=source)
    index = ProjectIndex(modules=(info,))
    suppressions = parse_suppressions(path, source)
    findings: list[Finding] = list(suppressions.problems)
    for rule in selected:
        emitted = (
            rule.check_project(index)
            if isinstance(rule, ProjectRule)
            else rule.check(info)
        )
        for finding in emitted:
            if not suppressions.allows(finding):
                findings.append(finding)
    return sorted(findings)


def iter_python_files(paths: Iterable[str | pathlib.Path]) -> Iterator[pathlib.Path]:
    """Every ``.py`` file under *paths*, deterministically ordered."""
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path
        else:
            raise AnalysisError(f"not a python file or directory: {path}")


def find_design_text(paths: Iterable[str | pathlib.Path]) -> str | None:
    """DESIGN.md contents found by walking up from the analyzed paths."""
    for raw in paths:
        probe = pathlib.Path(raw).resolve()
        for ancestor in [probe, *probe.parents]:
            candidate = ancestor / "DESIGN.md"
            if candidate.is_file():
                return candidate.read_text(encoding="utf-8")
    return None


def build_index(
    paths: Iterable[str | pathlib.Path],
    progress: Callable[[str], None] | None = None,
) -> tuple[ProjectIndex, list[Finding], dict[str, Suppressions]]:
    """Parse every python file under *paths* exactly once.

    Returns the project index, parse-error findings for unparseable
    files, and the per-path suppression tables used to filter both the
    per-module and the project-rule passes.
    """
    path_list = list(paths)
    modules: list[ModuleInfo] = []
    parse_errors: list[Finding] = []
    suppressions: dict[str, Suppressions] = {}
    for file_path in iter_python_files(path_list):
        if progress is not None:
            progress(str(file_path))
        source = file_path.read_text(encoding="utf-8")
        path = str(file_path)
        suppressions[path] = parse_suppressions(path, source)
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            parse_errors.append(
                Finding(path=path, line=exc.lineno or 1,
                        col=(exc.offset or 0) + 1, rule="parse-error",
                        message=f"syntax error: {exc.msg}")
            )
            continue
        modules.append(
            ModuleInfo(path=path, module=module_name_for(file_path),
                       tree=tree, source=source)
        )
    index = ProjectIndex(
        modules=tuple(modules), design_text=find_design_text(path_list)
    )
    return index, parse_errors, suppressions


def analyze_paths(
    paths: Iterable[str | pathlib.Path],
    rules: Sequence[Rule] | None = None,
    progress: Callable[[str], None] | None = None,
) -> list[Finding]:
    """Analyze every python file under *paths*; findings sorted by location.

    All modules are parsed into one :class:`ProjectIndex` first, so
    per-module rules and whole-program rules share a single parse pass
    and one suppression table per file.
    """
    selected = tuple(rules) if rules is not None else all_rules()
    index, findings, suppressions = build_index(paths, progress=progress)
    for table in suppressions.values():
        findings.extend(table.problems)

    def keep(finding: Finding) -> bool:
        table = suppressions.get(finding.path)
        return table is None or not table.allows(finding)

    for rule in selected:
        if isinstance(rule, ProjectRule):
            findings.extend(f for f in rule.check_project(index) if keep(f))
        else:
            for info in index.modules:
                findings.extend(f for f in rule.check(info) if keep(f))
    return sorted(findings)


def render_findings(findings: Sequence[Finding]) -> str:
    """Human-readable report: one line per finding plus a verdict line."""
    lines = [finding.render() for finding in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"repro lint: {len(findings)} {noun}")
    return "\n".join(lines)
