"""Forward taint propagation: determinism sources must not reach sinks.

The ``det-*`` rules in :mod:`repro.analysis.determinism` flag *direct*
nondeterminism -- a literal ``time.time()`` call, a ``for`` over a set.
They are blind to a value that flows two assignments away::

    stamp = time.perf_counter()
    jitter = stamp * 2.0
    registry.counter("noc.x").inc(int(jitter))   # invisible to det-*

This module adds a whole-program forward dataflow pass. **Sources** are
wall-clock and monotonic reads, unseeded / globally-shared RNG draws,
builtin ``id()`` values, and set-iteration order. **Sinks** are
simulation-state stores inside :data:`~repro.analysis.core.SIM_SCOPE`,
telemetry payloads (metric samples, metric key strings, trace-sink
events), and experiment-identity inputs (``CellSpec`` / ``StreamSpec`` /
``TenantSpec`` fields and cache-fingerprint arguments). Taint moves
through assignments, tuple unpacking, arithmetic, f-strings, loop
targets, attribute stores on ``self``, returns, and -- via per-function
summaries iterated to a fixpoint over the project call graph -- through
call arguments and return values across modules.

Deliberate propagation limits (the false-positive budget): comparisons
and boolean tests launder taint (a branch on a tainted value is not a
tainted *result*), ``sorted``/``min``/``max``/``sum`` launder
set-iteration order (that is exactly how the cores canonicalize), and
``len``/``bool``/``isinstance`` launder everything.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.core import (
    SIM_SCOPE,
    Finding,
    ModuleInfo,
    ProjectIndex,
    ProjectRule,
    in_scope,
    register,
)
from repro.analysis.determinism import (
    _GLOBAL_RANDOM,
    _MONOTONIC,
    _SEEDED_CONSTRUCTORS,
    _WALLCLOCK,
)

#: Extra entropy constructors beyond the determinism-rule sets.
_ENTROPY_CALLS = frozenset({
    "random.SystemRandom",
    "os.urandom",
    "secrets.token_bytes",
    "secrets.token_hex",
    "uuid.uuid1",
    "uuid.uuid4",
})

#: Builtins that launder every taint kind (scalar facts about a value).
_CLEANSE_ALL = frozenset({"len", "bool", "isinstance", "issubclass", "type"})

#: Builtins that launder only iteration-order taint: they canonicalize
#: or reduce an unordered collection order-independently.
_CLEANSE_ORDER = frozenset({"sorted", "min", "max", "sum", "any", "all"})

#: Builtins that preserve the order of an unordered input: the result
#: of ``list(some_set)`` is address-ordered even though it is a list.
_ORDER_PRESERVING = frozenset({"list", "tuple", "iter", "enumerate", "reversed"})

#: Metric factory methods on a registry-like receiver.
_METRIC_FACTORIES = frozenset({"counter", "gauge", "histogram", "series"})

#: Sample methods on a metric object.
_SAMPLE_METHODS = frozenset({"inc", "set", "update_max", "record", "observe"})

#: Event methods on a trace sink.
_TRACE_METHODS = frozenset({"instant", "begin", "end", "complete"})

#: Constructors whose fields define experiment identity.
_SPEC_NAMES = frozenset({"CellSpec", "StreamSpec", "TenantSpec"})

#: Human description per taint kind, used in messages.
_KIND_DESC = {
    "wallclock": "wall-clock",
    "monotonic": "monotonic-clock",
    "rng": "unseeded/shared-RNG",
    "id": "id()-address",
    "set-order": "set-iteration-order",
}

_MAX_ROUNDS = 4


# -- tags ---------------------------------------------------------------------
#
# A taint value is a frozenset of tags:
#   ("k", kind, origin, line)  concrete taint from a named source
#   ("p", index)               symbolic: flows from the enclosing
#                              function's parameter *index*
#   ("fn", kind, origin, line) an un-called reference to a source
#                              function (``perf = time.perf_counter``)

Tags = frozenset

_EMPTY: Tags = frozenset()


def _concrete(tags: Tags) -> list[tuple[str, str, str, int]]:
    return sorted(tag for tag in tags if tag[0] == "k")


def _params(tags: Tags) -> list[int]:
    return sorted(tag[1] for tag in tags if tag[0] == "p")


def _strip_order(tags: Tags) -> Tags:
    return frozenset(
        tag for tag in tags if not (tag[0] == "k" and tag[1] == "set-order")
    )


@dataclass(frozen=True)
class SinkHit:
    """One sink reached from a function parameter (summary entry)."""

    rule: str
    param: int
    sink: str


@dataclass(frozen=True)
class FunctionSummary:
    """What a function does with taint, independent of any call site."""

    param_names: tuple[str, ...] = ()
    returns: Tags = _EMPTY
    returns_params: frozenset[int] = frozenset()
    sinks: frozenset[SinkHit] = frozenset()


@dataclass
class _FunctionEntry:
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None


def _module_functions(info: ModuleInfo) -> dict[str, _FunctionEntry]:
    table: dict[str, _FunctionEntry] = {}
    for node in info.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            table[node.name] = _FunctionEntry(node, None)
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    table[f"{node.name}.{item.name}"] = _FunctionEntry(
                        item, node.name
                    )
    return table


def _param_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    args = node.args
    return tuple(
        arg.arg
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]
    )


# -- the per-function evaluator ----------------------------------------------


class _FunctionPass:
    """One forward pass over one function (or the module body)."""

    def __init__(
        self,
        engine: "_Engine",
        info: ModuleInfo,
        key: str,
        entry: _FunctionEntry | None,
        emit: bool,
    ) -> None:
        self.engine = engine
        self.info = info
        self.key = key
        self.entry = entry
        self.emit = emit
        self.env: dict[str, Tags] = {}
        self.set_vars: set[str] = set()
        self.assigned: set[str] = set()
        self.returns: set = set()
        self.returns_params: set[int] = set()
        self.sinks: set[SinkHit] = set()
        self.param_index: dict[str, int] = {}
        self.class_name = entry.class_name if entry else None
        self.at_module_level = entry is None
        if entry is not None:
            names = _param_names(entry.node)
            for index, name in enumerate(names):
                self.param_index[name] = index
                self.env[name] = frozenset({("p", index)})
                self.assigned.add(name)

    # -- driving --------------------------------------------------------------

    def run(self) -> FunctionSummary:
        body = (
            self.entry.node.body if self.entry is not None
            else self.info.tree.body
        )
        self.block(body)
        names = _param_names(self.entry.node) if self.entry else ()
        return FunctionSummary(
            param_names=names,
            returns=frozenset(self.returns),
            returns_params=frozenset(self.returns_params),
            sinks=frozenset(self.sinks),
        )

    def block(self, statements: list[ast.stmt]) -> None:
        for statement in statements:
            self.statement(statement)

    def statement(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # analyzed as their own functions
        if isinstance(node, ast.Assign):
            tags = self.eval(node.value)
            is_set = self.is_set_expr(node.value)
            for target in node.targets:
                self.bind(target, tags, node.value, is_set=is_set)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                tags = self.eval(node.value)
                self.bind(node.target, tags, node.value,
                          is_set=self.is_set_expr(node.value))
        elif isinstance(node, ast.AugAssign):
            tags = self.eval(node.value) | self.eval_load_target(node.target)
            self.bind(node.target, tags, node.value, is_set=False)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                tags = self.eval(node.value)
                self.returns.update(
                    tag for tag in tags if tag[0] in ("k", "fn")
                )
                self.returns_params.update(_params(tags))
        elif isinstance(node, ast.For):
            tags = self.eval(node.iter)
            if self.is_set_expr(node.iter):
                tags = tags | frozenset(
                    {("k", "set-order", "set iteration", node.iter.lineno)}
                )
            self.bind(node.target, tags, node.iter, is_set=False)
            self.block(node.body)
            self.block(node.orelse)
        elif isinstance(node, ast.While):
            self.eval(node.test)
            self.block(node.body)
            self.block(node.orelse)
        elif isinstance(node, ast.If):
            self.eval(node.test)
            self.block(node.body)
            self.block(node.orelse)
        elif isinstance(node, ast.With):
            for item in node.items:
                tags = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self.bind(item.optional_vars, tags, item.context_expr,
                              is_set=False)
            self.block(node.body)
        elif isinstance(node, ast.Try):
            self.block(node.body)
            for handler in node.handlers:
                self.block(handler.body)
            self.block(node.orelse)
            self.block(node.finalbody)
        elif isinstance(node, ast.Expr):
            self.eval(node.value)
        else:
            # Generic fallback (Raise, Assert, Match, ...): evaluate every
            # embedded expression so sink checks inside calls still run.
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.eval(child)

    # -- binding --------------------------------------------------------------

    def bind(
        self, target: ast.expr, tags: Tags, value: ast.expr, *, is_set: bool
    ) -> None:
        if isinstance(target, ast.Name):
            self.assigned.add(target.id)
            self.env[target.id] = tags
            if is_set:
                self.set_vars.add(target.id)
            elif target.id in self.set_vars:
                self.set_vars.discard(target.id)
            if self.at_module_level:
                self.state_sink(target, tags, f"module global `{target.id}`")
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self.bind(element, tags, value, is_set=False)
        elif isinstance(target, ast.Starred):
            self.bind(target.value, tags, value, is_set=False)
        elif isinstance(target, ast.Attribute):
            self.eval(target.value)
            self.record_attr_store(target, tags)
            self.state_sink(target, tags, f"attribute store `.{target.attr}`")
        elif isinstance(target, ast.Subscript):
            self.eval(target.value)
            self.eval(target.slice)
            self.state_sink(target, tags, "container store `[...]`")

    def record_attr_store(self, target: ast.Attribute, tags: Tags) -> None:
        if (
            self.class_name is not None
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            concrete = frozenset(tag for tag in tags if tag[0] == "k")
            if concrete:
                self.engine.next_attr_taints.setdefault(
                    (self.info.path, self.class_name), {}
                ).setdefault(target.attr, set()).update(concrete)

    def eval_load_target(self, target: ast.expr) -> Tags:
        if isinstance(target, ast.Name):
            return self.env.get(target.id, _EMPTY)
        return self.eval(target) if isinstance(target, ast.expr) else _EMPTY

    # -- sinks ----------------------------------------------------------------

    def state_sink(self, node: ast.AST, tags: Tags, sink: str) -> None:
        if not in_scope(self.info.module, SIM_SCOPE):
            return
        self.report("df-taint-state", node, tags,
                    f"simulation-state {sink}")

    def report(self, rule: str, node: ast.AST, tags: Tags, sink: str) -> None:
        for _, kind, origin, line in _concrete(tags):
            if self.emit:
                self.engine.emit(
                    rule, self.info, node,
                    f"{_KIND_DESC[kind]} value from {origin} "
                    f"(line {line}) reaches {sink}",
                )
        for index in _params(tags):
            self.sinks.add(SinkHit(rule=rule, param=index, sink=sink))

    # -- expressions ----------------------------------------------------------

    def is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return (
                node.func.id in ("set", "frozenset")
                and node.func.id not in self.assigned
                and node.func.id not in self.info.imports
            )
        if isinstance(node, ast.Name):
            return node.id in self.set_vars
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
        ):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        return False

    def source_qualname(self, func: ast.expr) -> str | None:
        """Resolve *func* through imports unless its root is shadowed."""
        root = func
        while isinstance(root, ast.Attribute):
            root = root.value
        if isinstance(root, ast.Name) and root.id in self.assigned:
            return None
        return self.info.qualname(func)

    def eval(self, node: ast.expr | None) -> Tags:
        if node is None:
            return _EMPTY
        if isinstance(node, ast.Name):
            return self.env.get(node.id, _EMPTY)
        if isinstance(node, ast.Constant):
            return _EMPTY
        if isinstance(node, ast.Attribute):
            base = self.eval(node.value)
            qualname = self.source_qualname(node)
            if qualname in _WALLCLOCK:
                return base | frozenset(
                    {("fn", "wallclock", qualname, node.lineno)}
                )
            if qualname in _MONOTONIC:
                return base | frozenset(
                    {("fn", "monotonic", qualname, node.lineno)}
                )
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and self.class_name is not None
            ):
                attr_map = self.engine.attr_taints.get(
                    (self.info.path, self.class_name), {}
                )
                base = base | frozenset(attr_map.get(node.attr, set()))
            return base
        if isinstance(node, ast.Call):
            return self.eval_call(node)
        if isinstance(node, (ast.Compare, ast.BoolOp)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.eval(child)
            return _EMPTY  # branch decisions launder taint
        if isinstance(node, ast.Lambda):
            return _EMPTY
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            tags = set()
            for generator in node.generators:
                iter_tags = self.eval(generator.iter)
                if self.is_set_expr(generator.iter):
                    iter_tags = iter_tags | frozenset(
                        {("k", "set-order", "set iteration",
                          generator.iter.lineno)}
                    )
                self.bind(generator.target, iter_tags, generator.iter,
                          is_set=False)
                tags.update(iter_tags)
            if isinstance(node, ast.DictComp):
                tags.update(self.eval(node.key))
                tags.update(self.eval(node.value))
            else:
                tags.update(self.eval(node.elt))
            return frozenset(tags)
        # Default: union over child expressions (BinOp, UnaryOp, IfExp,
        # JoinedStr, FormattedValue, Tuple, List, Dict, Subscript, ...).
        tags = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                tags.update(self.eval(child))
        return frozenset(tags)

    # -- calls ----------------------------------------------------------------

    def eval_call(self, node: ast.Call) -> Tags:
        func_tags = self.eval(node.func)
        arg_tags: list[Tags] = [self.eval(arg) for arg in node.args]
        kw_tags: dict[str, Tags] = {}
        star_tags: Tags = _EMPTY
        for keyword in node.keywords:
            tags = self.eval(keyword.value)
            if keyword.arg is None:
                star_tags = star_tags | tags
            else:
                kw_tags[keyword.arg] = tags
        all_args = frozenset().union(star_tags, *arg_tags, *kw_tags.values())

        self.check_sinks(node, arg_tags, kw_tags, star_tags)

        qualname = self.source_qualname(node.func)
        line = node.lineno
        if qualname in _WALLCLOCK:
            return frozenset({("k", "wallclock", qualname, line)}) | all_args
        if qualname in _MONOTONIC:
            return frozenset({("k", "monotonic", qualname, line)}) | all_args
        if qualname in _GLOBAL_RANDOM or qualname in _ENTROPY_CALLS:
            return frozenset({("k", "rng", qualname, line)}) | all_args
        if qualname in _SEEDED_CONSTRUCTORS and not node.args and not node.keywords:
            return frozenset({("k", "rng", f"{qualname}() without a seed", line)})

        if isinstance(node.func, ast.Name):
            name = node.func.id
            if name == "id" and name not in self.assigned and "id" not in self.info.imports:
                return frozenset({("k", "id", "builtin id()", line)}) | all_args
            if name in _CLEANSE_ALL and name not in self.assigned:
                return _EMPTY
            if name in _CLEANSE_ORDER and name not in self.assigned:
                return _strip_order(all_args)
            if name in _ORDER_PRESERVING and name not in self.assigned:
                tags = all_args
                if any(self.is_set_expr(arg) for arg in node.args):
                    tags = tags | frozenset(
                        {("k", "set-order", "set iteration", line)}
                    )
                return tags

        # Calling a stored reference to a source function.
        produced = frozenset(
            ("k", tag[1], tag[2], line)
            for tag in func_tags if tag[0] == "fn"
        )

        resolved = self.apply_summary(node, arg_tags, kw_tags)
        if resolved is not None:
            return resolved | produced
        # Unresolved callee: propagate receiver + argument taint through.
        carried = frozenset(
            tag for tag in (func_tags | all_args) if tag[0] != "fn"
        )
        return carried | produced

    def apply_summary(
        self,
        node: ast.Call,
        arg_tags: list[Tags],
        kw_tags: dict[str, Tags],
    ) -> Tags | None:
        resolution = self.engine.resolve_callee(self.info, node, self.assigned,
                                               self.class_name)
        if resolution is None:
            return None
        summary, offset, callee_label = resolution
        mapped: dict[int, Tags] = {}
        for position, tags in enumerate(arg_tags):
            mapped[position + offset] = tags
        for name, tags in kw_tags.items():
            if name in summary.param_names:
                mapped[summary.param_names.index(name)] = tags
        result = set(summary.returns)
        for index in summary.returns_params:
            result.update(mapped.get(index, _EMPTY))
        for hit in sorted(summary.sinks,
                          key=lambda h: (h.rule, h.param, h.sink)):
            tags = mapped.get(hit.param, _EMPTY)
            self.report(
                hit.rule, node, tags,
                f"{hit.sink} inside {callee_label}()",
            )
        return frozenset(result)

    # -- telemetry / spec sinks ----------------------------------------------

    def check_sinks(
        self,
        node: ast.Call,
        arg_tags: list[Tags],
        kw_tags: dict[str, Tags],
        star_tags: Tags,
    ) -> None:
        every = frozenset().union(star_tags, *arg_tags, *kw_tags.values())
        func = node.func
        if isinstance(func, ast.Attribute):
            method = func.attr
            if method in _METRIC_FACTORIES and node.args:
                self.report(
                    "df-taint-telemetry", node, self.eval_cached(node.args[0]),
                    f"metric key of `.{method}(...)`",
                )
            if method in _SAMPLE_METHODS and self.is_metric_receiver(func.value):
                self.report(
                    "df-taint-telemetry", node, every,
                    f"metric sample `.{method}(...)`",
                )
            if method in _TRACE_METHODS and self.is_trace_receiver(func.value):
                self.report(
                    "df-taint-telemetry", node, every,
                    f"trace event `.{method}(...)`",
                )
        terminal = self.callee_terminal(func)
        if terminal in _SPEC_NAMES:
            self.report(
                "df-taint-spec", node, every,
                f"`{terminal}` experiment-identity field",
            )
        elif terminal is not None and "fingerprint" in terminal:
            self.report(
                "df-taint-spec", node, every,
                f"cache-fingerprint input `{terminal}(...)`",
            )

    def eval_cached(self, node: ast.expr) -> Tags:
        # Arguments were just evaluated by the caller; a re-eval is cheap
        # and side-effect-free for everything except nested sink calls,
        # which would double-report -- so only re-eval non-Call args.
        if isinstance(node, ast.Call):
            return _EMPTY
        return self.eval(node)

    def is_metric_receiver(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            return node.func.attr in _METRIC_FACTORIES
        if isinstance(node, ast.Name):
            return node.id in self.engine.metric_vars.get(
                (self.info.path, self.key), set()
            )
        if isinstance(node, ast.Subscript):
            terminal = self.callee_terminal(node.value)
            return terminal is not None and "series" in terminal.lower()
        return False

    def is_trace_receiver(self, node: ast.expr) -> bool:
        terminal = self.callee_terminal(node)
        return terminal is not None and "sink" in terminal.lower()

    @staticmethod
    def callee_terminal(node: ast.expr) -> str | None:
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Name):
            return node.id
        return None


# -- the engine ---------------------------------------------------------------


class _Engine:
    """Project-wide fixpoint driver producing dataflow findings."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.functions: dict[str, dict[str, _FunctionEntry]] = {}
        self.summaries: dict[tuple[str, str], FunctionSummary] = {}
        self.attr_taints: dict[tuple[str, str], dict[str, set]] = {}
        self.next_attr_taints: dict[tuple[str, str], dict[str, set]] = {}
        self.metric_vars: dict[tuple[str, str], set[str]] = {}
        self.findings: list[Finding] = []
        self._seen: set[tuple[str, int, str, str]] = set()
        for info in index.modules:
            self.functions[info.path] = _module_functions(info)

    def emit(self, rule: str, info: ModuleInfo, node: ast.AST,
             message: str) -> None:
        line = getattr(node, "lineno", 1)
        key = (info.path, line, rule, message)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(Finding(
            path=info.path, line=line,
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule, message=message,
        ))

    def resolve_callee(
        self,
        info: ModuleInfo,
        node: ast.Call,
        assigned: set[str],
        class_name: str | None,
    ) -> tuple[FunctionSummary, int, str] | None:
        """(summary, arg->param offset, label) for a resolvable callee."""
        func = node.func
        local = self.functions.get(info.path, {})
        if isinstance(func, ast.Name):
            if func.id in local and func.id not in assigned:
                summary = self.summaries.get((info.path, func.id))
                if summary is not None:
                    return summary, 0, func.id
            origin = None if func.id in assigned else info.imports.get(func.id)
            if origin is not None and "." in origin:
                module_name, _, function_name = origin.rpartition(".")
                target = self.index.module(module_name)
                if target is not None:
                    summary = self.summaries.get((target.path, function_name))
                    if summary is not None:
                        return summary, 0, origin
        elif isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and class_name is not None
            ):
                key = f"{class_name}.{func.attr}"
                summary = self.summaries.get((info.path, key))
                if summary is not None:
                    return summary, 1, key
            origin = info.qualname(func)
            if origin is not None and "." in origin:
                module_name, _, function_name = origin.rpartition(".")
                target = self.index.module(module_name)
                if target is not None:
                    summary = self.summaries.get((target.path, function_name))
                    if summary is not None:
                        return summary, 0, origin
        return None

    def _collect_metric_vars(self) -> None:
        """Names assigned from metric factory calls / series subscripts."""
        for info in self.index.modules:
            table = self.functions[info.path]
            entries: list[tuple[str, list[ast.stmt]]] = [
                ("<module>", info.tree.body)
            ]
            entries.extend(
                (key, entry.node.body) for key, entry in table.items()
            )
            for key, body in entries:
                names: set[str] = set()
                for statement in body:
                    for node in ast.walk(statement):
                        if not isinstance(node, ast.Assign):
                            continue
                        value = node.value
                        is_metric = (
                            isinstance(value, ast.Call)
                            and isinstance(value.func, ast.Attribute)
                            and value.func.attr in _METRIC_FACTORIES
                        ) or (
                            isinstance(value, ast.Subscript)
                            and isinstance(value.value, (ast.Name, ast.Attribute))
                            and "series" in (
                                _FunctionPass.callee_terminal(value.value) or ""
                            ).lower()
                        )
                        if not is_metric:
                            continue
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                names.add(target.id)
                if names:
                    self.metric_vars[(info.path, key)] = names

    def _one_round(self, emit: bool) -> bool:
        changed = False
        self.next_attr_taints = {}
        for info in self.index.modules:
            table = self.functions[info.path]
            module_pass = _FunctionPass(self, info, "<module>", None, emit)
            module_pass.run()
            for key in sorted(table):
                entry = table[key]
                run = _FunctionPass(self, info, key, entry, emit)
                summary = run.run()
                if self.summaries.get((info.path, key)) != summary:
                    self.summaries[(info.path, key)] = summary
                    changed = True
        if self.next_attr_taints != self.attr_taints:
            self.attr_taints = self.next_attr_taints
            changed = True
        return changed

    def run(self) -> list[Finding]:
        self._collect_metric_vars()
        for _ in range(_MAX_ROUNDS):
            if not self._one_round(emit=False):
                break
        self._one_round(emit=True)
        return sorted(self.findings)


def dataflow_findings(index: ProjectIndex) -> list[Finding]:
    """All dataflow findings for *index*, computed once and cached."""
    cached = getattr(index, "_dataflow_findings", None)
    if cached is None:
        cached = _Engine(index).run()
        index._dataflow_findings = cached  # type: ignore[attr-defined]
    return cached


class _DataflowRule(ProjectRule):
    family = "dataflow"

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        for finding in dataflow_findings(index):
            if finding.rule == self.id:
                yield finding


@register
class TaintStateRule(_DataflowRule):
    id = "df-taint-state"
    summary = (
        "no wall-clock / RNG / id() / set-order value may flow into "
        "simulation state (attribute, container, or global stores in "
        "sim/noc/core/cache/faults), even through assignments and calls"
    )


@register
class TaintTelemetryRule(_DataflowRule):
    id = "df-taint-telemetry"
    summary = (
        "no nondeterministic value may flow into a telemetry payload: "
        "metric samples, metric key strings, or trace-sink events"
    )


@register
class TaintSpecRule(_DataflowRule):
    id = "df-taint-spec"
    summary = (
        "no nondeterministic value may flow into experiment identity: "
        "CellSpec/StreamSpec/TenantSpec fields or cache-fingerprint inputs"
    )
