"""Static telemetry-key catalog: every metric key the tree can emit.

The metrics registry is stringly keyed: ``registry.counter("noc.x")``
in one module and ``registry.gauge("noc.x")`` in another collide only
at runtime (or worse, never meet in one process and silently fork the
schema). This module extracts, purely statically, every key pattern
passed to a metric factory (``counter`` / ``gauge`` / ``histogram`` /
``series``) or bound to a metric constructor (``Series(...)`` in a
series-table literal), across the emitting packages.

F-string keys resolve through local constants: a parameter default
(``prefix="noc.router"``) or a single local assignment
(``prefix = f"stream.series.tenant.{name}"``) is inlined; anything
still dynamic becomes a ``*`` wildcard, so
``f"noc.link.flits.{src}->{dst}"`` catalogs as ``noc.link.flits.*->*``.
Sites whose whole key is dynamic (the registry's own internals, the
republish loops) are skipped -- their keys always originate from a
literal site that *is* cataloged.

Four project rules ride on the extraction: ``cat-key-collision`` (one
pattern, two kinds), ``cat-key-typo`` (edit-distance-1 near-miss of an
established key), ``cat-undocumented`` (pattern missing from the
DESIGN.md schema tables), and ``cat-stale`` (the generated
:mod:`repro.telemetry.catalog` no longer matches the tree; regenerate
with ``repro lint --write-catalog``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.core import (
    Finding,
    ModuleInfo,
    ProjectIndex,
    ProjectRule,
    in_scope,
    register,
)

#: Packages whose modules are swept for metric-key sites.
CATALOG_SCOPE: tuple[str, ...] = (
    "repro.noc",
    "repro.cache",
    "repro.core",
    "repro.stream",
    "repro.faults",
    "repro.telemetry",
    "repro.sim",
    "repro.experiments",
)

#: Modules excluded from extraction: the registry's own internals key
#: metrics by caller-supplied name, and the generated catalog itself.
_EXCLUDED_MODULES = frozenset({
    "repro.telemetry.registry",
    "repro.telemetry.catalog",
})

_FACTORY_KINDS = {
    "counter": "counter",
    "gauge": "gauge",
    "histogram": "histogram",
    "series": "series",
}

_CONSTRUCTOR_KINDS = {
    "Counter": "counter",
    "Gauge": "gauge",
    "Histogram": "histogram",
    "Series": "series",
}

#: Where the generated catalog module lives, as a dotted name.
GENERATED_MODULE = "repro.telemetry.catalog"


@dataclass(frozen=True, order=True)
class KeySite:
    """One static emit site of one key pattern."""

    pattern: str
    kind: str
    path: str
    line: int


# -- pattern resolution -------------------------------------------------------


def _local_constants(
    scope: ast.FunctionDef | ast.AsyncFunctionDef | None,
) -> dict[str, str]:
    """Names resolvable to a key pattern inside *scope*.

    A parameter's literal-string default counts; so does a name assigned
    exactly once from a resolvable string expression. Reassigned names
    are dropped -- a loop variable must stay dynamic.
    """
    if scope is None:
        return {}
    constants: dict[str, str] = {}
    args = scope.args
    positional = [*args.posonlyargs, *args.args]
    for arg, default in zip(positional[len(positional) - len(args.defaults):],
                            args.defaults):
        if isinstance(default, ast.Constant) and isinstance(default.value, str):
            constants[arg.arg] = default.value
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if (
            default is not None
            and isinstance(default, ast.Constant)
            and isinstance(default.value, str)
        ):
            constants[arg.arg] = default.value

    assignments: dict[str, list[ast.expr]] = {}
    for node in _statements_shallow(scope.body):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    assignments.setdefault(target.id, []).append(node.value)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign, ast.For)):
            target = node.target
            if isinstance(target, ast.Name):
                assignments.setdefault(target.id, []).append(None)  # dynamic
    for name, values in assignments.items():
        if name in constants:
            del constants[name]  # reassigned parameter: dynamic
            continue
        if len(values) != 1 or values[0] is None:
            continue
        resolved = resolve_pattern(values[0], constants)
        if resolved is not None:
            constants[name] = resolved
    return constants


def resolve_pattern(
    node: ast.expr, constants: dict[str, str]
) -> str | None:
    """Key pattern for a string expression, or None when fully dynamic.

    Unresolvable fragments become ``*``; a pattern with no literal
    characters at all returns None (nothing to catalog).
    """
    resolved = _resolve(node, constants)
    if resolved is None:
        return None
    if not resolved.replace("*", ""):
        return None
    return resolved


def _resolve(node: ast.expr, constants: dict[str, str]) -> str | None:
    if isinstance(node, ast.Constant):
        return node.value if isinstance(node.value, str) else None
    if isinstance(node, ast.Name):
        return constants.get(node.id, "*")
    if isinstance(node, ast.JoinedStr):
        parts: list[str] = []
        for value in node.values:
            if isinstance(value, ast.Constant):
                if not isinstance(value.value, str):
                    return None
                parts.append(value.value)
            elif isinstance(value, ast.FormattedValue):
                inner = _resolve(value.value, constants)
                parts.append(inner if inner is not None else "*")
            else:
                return None
        return "".join(parts)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = _resolve(node.left, constants)
        right = _resolve(node.right, constants)
        if left is None or right is None:
            return None
        return left + right
    if isinstance(node, ast.FormattedValue):
        return _resolve(node.value, constants)
    return "*"


# -- extraction ---------------------------------------------------------------


def _scopes(
    info: ModuleInfo,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef | None, list[ast.stmt]]]:
    yield None, info.tree.body
    for node in ast.walk(info.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.body


def _statements_shallow(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Every node in *body*, not descending into nested function defs.

    Function bodies belong to their own scope (with their own local
    constants), so the def itself is yielded but never entered.
    """
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def extract_module_sites(info: ModuleInfo) -> list[KeySite]:
    """Every metric-key emit site in one module."""
    sites: list[KeySite] = []
    for scope, body in _scopes(info):
        constants = _local_constants(scope)
        for node in _statements_shallow(body):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _FACTORY_KINDS
                    and node.args
                ):
                    pattern = resolve_pattern(node.args[0], constants)
                    if pattern is not None:
                        sites.append(KeySite(
                            pattern=pattern,
                            kind=_FACTORY_KINDS[func.attr],
                            path=info.path, line=node.lineno,
                        ))
            elif isinstance(node, ast.Dict):
                for key, value in zip(node.keys, node.values):
                    kind = _constructed_kind(value)
                    if key is None or kind is None:
                        continue
                    pattern = resolve_pattern(key, constants)
                    if pattern is not None:
                        sites.append(KeySite(
                            pattern=pattern, kind=kind,
                            path=info.path, line=key.lineno,
                        ))
            elif isinstance(node, ast.Assign):
                kind = _constructed_kind(node.value)
                if kind is None:
                    continue
                for target in node.targets:
                    if not isinstance(target, ast.Subscript):
                        continue
                    pattern = resolve_pattern(target.slice, constants)
                    if pattern is not None:
                        sites.append(KeySite(
                            pattern=pattern, kind=kind,
                            path=info.path, line=target.lineno,
                        ))
    return sorted(set(sites))


def _constructed_kind(node: ast.expr) -> str | None:
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    return _CONSTRUCTOR_KINDS.get(name or "")


def extract_sites(index: ProjectIndex) -> list[KeySite]:
    """Every metric-key emit site across the cataloged packages."""
    sites: list[KeySite] = []
    for info in index.modules:
        if info.module in _EXCLUDED_MODULES:
            continue
        if not in_scope(info.module, CATALOG_SCOPE):
            continue
        sites.extend(extract_module_sites(info))
    return sorted(set(sites))


def build_catalog(sites: list[KeySite]) -> dict[str, tuple[str, ...]]:
    """Pattern -> sorted kinds, over *sites*."""
    catalog: dict[str, set[str]] = {}
    for site in sites:
        catalog.setdefault(site.pattern, set()).add(site.kind)
    return {
        pattern: tuple(sorted(kinds))
        for pattern, kinds in sorted(catalog.items())
    }


# -- generated module ---------------------------------------------------------

_GENERATED_HEADER = '''"""Static telemetry-key catalog (GENERATED -- do not edit by hand).

Every metric/series key pattern the tree can emit, extracted by
``repro.analysis.catalog`` from the emitting packages. ``*`` is a
wildcard for a dynamic fragment (node ids, tenant names, ports).
Regenerate after adding or renaming a key::

    repro lint --write-catalog

The ``cat-stale`` lint rule fails when this file and the tree disagree;
``repro report --check-schema`` diffs runtime snapshots against it.
"""

from __future__ import annotations

import re

#: key pattern -> metric kinds registered under it.
CATALOG: dict[str, tuple[str, ...]] = {
'''

_GENERATED_FOOTER = '''}


def _pattern_regex(pattern: str) -> "re.Pattern[str]":
    parts = [re.escape(part) for part in pattern.split("*")]
    return re.compile("^" + "(.+?)".join(parts) + "$")


_WILDCARDS: list[tuple["re.Pattern[str]", str]] | None = None


def covers(key: str) -> tuple[str, ...] | None:
    """Kinds of the catalog pattern covering *key*, or None."""
    exact = CATALOG.get(key)
    if exact is not None:
        return exact
    global _WILDCARDS
    if _WILDCARDS is None:
        _WILDCARDS = [
            (_pattern_regex(pattern), pattern)
            for pattern in CATALOG
            if "*" in pattern
        ]
    for regex, pattern in _WILDCARDS:
        if regex.match(key):
            return CATALOG[pattern]
    return None


def unknown_keys(snapshot: dict[str, object]) -> list[str]:
    """Snapshot keys not covered by any catalog pattern, sorted."""
    return sorted(key for key in snapshot if covers(key) is None)
'''


def generate_catalog_source(index: ProjectIndex) -> str:
    """Source text of the generated ``repro.telemetry.catalog`` module."""
    catalog = build_catalog(extract_sites(index))
    lines = [_GENERATED_HEADER]
    for pattern, kinds in catalog.items():
        rendered = "".join(f'"{kind}", ' for kind in kinds).rstrip()
        lines.append(f'    "{pattern}": ({rendered}),\n')
    lines.append(_GENERATED_FOOTER)
    return "".join(lines)


def _catalog_from_generated(info: ModuleInfo) -> dict[str, tuple[str, ...]] | None:
    """Parse the CATALOG literal out of the generated module's AST."""
    for node in info.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not any(
            isinstance(t, ast.Name) and t.id == "CATALOG" for t in targets
        ):
            continue
        try:
            literal = ast.literal_eval(value)
        except (ValueError, TypeError, SyntaxError):
            return None
        if isinstance(literal, dict):
            return {
                str(key): tuple(str(kind) for kind in kinds)
                for key, kinds in literal.items()
            }
    return None


# -- rules --------------------------------------------------------------------


def _edit_distance_le1(a: str, b: str) -> bool:
    """True when *a* and *b* differ by one edit (and are not equal)."""
    if a == b:
        return False
    if abs(len(a) - len(b)) > 1:
        return False
    if len(a) == len(b):
        return sum(x != y for x, y in zip(a, b)) == 1
    short, long = (a, b) if len(a) < len(b) else (b, a)
    for i in range(len(long)):
        if short == long[:i] + long[i + 1:]:
            return True
    return False


def _first_site(sites: list[KeySite], pattern: str) -> KeySite:
    return min(site for site in sites if site.pattern == pattern)


def _project_sites(index: ProjectIndex) -> list[KeySite]:
    cached = getattr(index, "_catalog_sites", None)
    if cached is None:
        cached = extract_sites(index)
        index._catalog_sites = cached  # type: ignore[attr-defined]
    return cached


@register
class KeyCollisionRule(ProjectRule):
    id = "cat-key-collision"
    family = "catalog"
    summary = (
        "one metric key pattern must not be registered under two "
        "different metric kinds anywhere in the tree"
    )

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        sites = _project_sites(index)
        catalog = build_catalog(sites)
        for pattern, kinds in catalog.items():
            if len(kinds) < 2:
                continue
            for site in sorted(s for s in sites if s.pattern == pattern):
                yield Finding(
                    path=site.path, line=site.line, col=1, rule=self.id,
                    message=(
                        f"metric key {pattern!r} is registered as "
                        f"{site.kind} here but also as "
                        f"{', '.join(k for k in kinds if k != site.kind)} "
                        "elsewhere; one key must have one kind"
                    ),
                )


@register
class KeyTypoRule(ProjectRule):
    id = "cat-key-typo"
    family = "catalog"
    summary = (
        "a metric key emitted at a single site must not sit one edit "
        "away from an established multi-site key (near-miss typo)"
    )

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        sites = _project_sites(index)
        counts: dict[str, int] = {}
        for site in sites:
            counts[site.pattern] = counts.get(site.pattern, 0) + 1
        patterns = sorted(counts)
        for pattern in patterns:
            if counts[pattern] != 1:
                continue
            for other in patterns:
                if counts[other] < 2:
                    continue
                if _edit_distance_le1(pattern, other):
                    site = _first_site(sites, pattern)
                    yield Finding(
                        path=site.path, line=site.line, col=1, rule=self.id,
                        message=(
                            f"metric key {pattern!r} (single emit site) is "
                            f"one edit away from {other!r} "
                            f"({counts[other]} sites); likely a typo"
                        ),
                    )
                    break


@register
class UndocumentedKeyRule(ProjectRule):
    id = "cat-undocumented"
    family = "catalog"
    summary = (
        "every cataloged metric key pattern must appear in the DESIGN.md "
        "schema tables (inactive outside a repo checkout)"
    )

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        text = index.design_text
        if text is None or "<!-- telemetry-schema -->" not in text:
            return
        sites = _project_sites(index)
        for pattern in sorted({site.pattern for site in sites}):
            if f"`{pattern}`" in text:
                continue
            site = _first_site(sites, pattern)
            yield Finding(
                path=site.path, line=site.line, col=1, rule=self.id,
                message=(
                    f"metric key {pattern!r} is emitted here but missing "
                    "from the DESIGN.md telemetry schema tables (§16)"
                ),
            )


@register
class StaleCatalogRule(ProjectRule):
    id = "cat-stale"
    family = "catalog"
    summary = (
        "the generated repro.telemetry.catalog module must match a fresh "
        "extraction; regenerate with `repro lint --write-catalog`"
    )

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        generated = index.module(GENERATED_MODULE)
        if generated is None:
            return
        recorded = _catalog_from_generated(generated)
        fresh = build_catalog(_project_sites(index))
        if recorded is None:
            yield Finding(
                path=generated.path, line=1, col=1, rule=self.id,
                message="generated catalog has no parseable CATALOG dict; "
                        "regenerate with `repro lint --write-catalog`",
            )
            return
        if recorded == fresh:
            return
        missing = sorted(set(fresh) - set(recorded))
        extra = sorted(set(recorded) - set(fresh))
        drifted = sorted(
            pattern for pattern in set(fresh) & set(recorded)
            if fresh[pattern] != recorded[pattern]
        )
        details = []
        if missing:
            details.append(f"missing {', '.join(missing[:4])}")
        if extra:
            details.append(f"stale {', '.join(extra[:4])}")
        if drifted:
            details.append(f"kind-drift {', '.join(drifted[:4])}")
        yield Finding(
            path=generated.path, line=1, col=1, rule=self.id,
            message=(
                "generated catalog is out of date ("
                + "; ".join(details)
                + "); regenerate with `repro lint --write-catalog`"
            ),
        )
