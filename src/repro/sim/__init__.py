"""Deterministic discrete-event simulation kernel.

This is the substrate under both simulators in the package: the flit-level
network simulator ticks a cycle process on it, and the transaction-level
cache simulator schedules protocol events on it directly.
"""

from repro.sim.kernel import Event, EventQueue, Simulator
from repro.sim.resource import FloorClock, OccupancyTracker, Resource

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "Resource",
    "OccupancyTracker",
    "FloorClock",
]
