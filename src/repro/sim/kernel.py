"""Event queue and simulator loop.

The kernel is deliberately minimal and fully deterministic: events that are
scheduled for the same time fire in the order they were scheduled (FIFO
within a timestamp), which keeps runs reproducible regardless of callback
content.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import SimulationError

if TYPE_CHECKING:
    from repro.telemetry import MetricsRegistry


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    Ordered by ``(time, sequence)`` so same-time events preserve scheduling
    order. ``cancelled`` events stay in the heap but are skipped when popped.
    """

    time: int
    sequence: int
    callback: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: Owning queue, so a cancel can keep its live-event count exact.
    owner: "EventQueue | None" = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Prevent this event from firing. Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            if self.owner is not None:
                self.owner._note_cancel()


#: Sweep cancelled events out of the heap once they outnumber live ones
#: (and the heap is at least this big), bounding memory on cancel-heavy runs.
_COMPACT_MIN_HEAP = 64


class EventQueue:
    """A time-ordered queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._cancelled = 0
        #: Time of the most recently popped event; scheduling before it
        #: would break causality (the past already executed).
        self._last_pop_time: int | None = None
        #: Most live events ever queued at once (exported as a gauge).
        self.high_water = 0

    def __len__(self) -> int:
        """Number of live (non-cancelled) events, in O(1)."""
        return len(self._heap) - self._cancelled

    @property
    def last_pop_time(self) -> int | None:
        """Time of the most recently dispatched event (the causality
        floor: nothing may be scheduled earlier than this)."""
        return self._last_pop_time

    def push(self, time: int, callback: Callable[[], Any]) -> Event:
        """Schedule *callback* at absolute *time* and return its event.

        Scheduling earlier than the last popped event's time raises
        :class:`SimulationError`: that moment has already executed, so the
        new event could never fire in causal order.
        """
        last = self._last_pop_time
        if last is not None and time < last:
            raise SimulationError(
                f"cannot schedule at time {time}: the queue already "
                f"dispatched an event at time {last}"
            )
        event = Event(
            time=time, sequence=next(self._counter), callback=callback, owner=self
        )
        heapq.heappush(self._heap, event)
        live = len(self._heap) - self._cancelled
        if live > self.high_water:
            self.high_water = live
        return event

    def pop(self) -> Event | None:
        """Remove and return the earliest live event, or ``None`` if empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)
            if not event.cancelled:
                event.owner = None  # late cancels must not skew the count
                self._last_pop_time = event.time
                return event
            self._cancelled -= 1
        return None

    def peek_time(self) -> int | None:
        """Time of the earliest live event, or ``None`` if empty."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            self._cancelled -= 1
        return heap[0].time if heap else None

    def _note_cancel(self) -> None:
        self._cancelled += 1
        heap = self._heap
        if len(heap) >= _COMPACT_MIN_HEAP and self._cancelled * 2 > len(heap):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events; heap order is (time, sequence), which
        filtering preserves, so a re-heapify keeps FIFO-within-timestamp."""
        live = [event for event in self._heap if not event.cancelled]
        heapq.heapify(live)
        self._heap = live
        self._cancelled = 0


class DeadlineQueue:
    """A keyed min-heap of deadlines with lazy deletion.

    Re-arming a key replaces its previous deadline; stale heap entries are
    skipped on :meth:`peek`/:meth:`pop_due`. Same-deadline keys pop in
    arm order (FIFO within a timestamp), matching the kernel's determinism
    contract. Used by the resilience layer for per-message retry timers.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, object]] = []
        self._counter = itertools.count()
        self._deadline: dict[object, int] = {}

    def __len__(self) -> int:
        """Number of armed keys (not heap entries)."""
        return len(self._deadline)

    def arm(self, key: object, time: int) -> None:
        """Set *key*'s deadline to absolute *time*, replacing any prior one."""
        self._deadline[key] = time
        heapq.heappush(self._heap, (time, next(self._counter), key))

    def disarm(self, key: object) -> None:
        """Remove *key*'s deadline. Idempotent."""
        self._deadline.pop(key, None)

    def deadline_of(self, key: object) -> int | None:
        return self._deadline.get(key)

    def _prune(self) -> None:
        heap = self._heap
        while heap:
            time, _, key = heap[0]
            if self._deadline.get(key) == time:
                return
            heapq.heappop(heap)

    def peek(self) -> int | None:
        """Earliest armed deadline, or ``None`` if nothing is armed."""
        self._prune()
        return self._heap[0][0] if self._heap else None

    def pop_due(self, now: int) -> list[object]:
        """Remove and return every key whose deadline is ``<= now``,
        ordered by (deadline, arm order)."""
        due: list[object] = []
        while True:
            self._prune()
            if not self._heap or self._heap[0][0] > now:
                return due
            _, _, key = heapq.heappop(self._heap)
            del self._deadline[key]
            due.append(key)


class Simulator:
    """Discrete-event simulator with integer (cycle) time."""

    def __init__(self) -> None:
        self._queue = EventQueue()
        self.now = 0
        self._running = False
        self.events_executed = 0
        #: Optional zero-argument hook called after every executed event.
        #: The validation watchdog uses it to detect livelock: the queue's
        #: causality guard forbids time going backward, so a simulation
        #: that keeps executing events without ``now`` advancing is stuck.
        self.watchdog: Callable[[], Any] | None = None

    def schedule(self, delay: int, callback: Callable[[], Any]) -> Event:
        """Schedule *callback* to run *delay* cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self._queue.push(self.now + delay, callback)

    def schedule_at(self, time: int, callback: Callable[[], Any]) -> Event:
        """Schedule *callback* at absolute cycle *time* (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time}, current time is {self.now}"
            )
        return self._queue.push(time, callback)

    @property
    def pending_events(self) -> int:
        """Number of live events still queued."""
        return len(self._queue)

    @property
    def queue_high_water(self) -> int:
        """Most live events ever queued at once."""
        return self._queue.high_water

    @property
    def last_event_time(self) -> int | None:
        """The queue's causality floor (last dispatched event's time)."""
        return self._queue.last_pop_time

    def publish_metrics(self, registry: MetricsRegistry) -> None:
        """Export kernel counters into a telemetry registry."""
        registry.gauge("sim.kernel.event_queue_high_water").update_max(
            self._queue.high_water
        )
        registry.counter("sim.kernel.events_executed").set(self.events_executed)

    def step(self) -> bool:
        """Run the earliest event; return ``False`` if the queue was empty."""
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self.now:
            raise SimulationError("event queue returned an event from the past")
        self.now = event.time
        self.events_executed += 1
        event.callback()
        if self.watchdog is not None:
            self.watchdog()
        return True

    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        """Drain the event queue.

        Stops when the queue empties, when the next event would fire after
        *until*, or after *max_events* events. Returns the number of events
        executed. ``until`` is inclusive.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        executed = 0
        try:
            while True:
                if max_events is not None and executed >= max_events:
                    break
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
                executed += 1
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = until
        return executed
