"""Occupancy-based resources for the transaction-level simulator.

The transaction-level cache simulator does not simulate individual flits;
instead every contended component (a cache bank, a network channel, a spike
issue queue, the memory controller) is a :class:`Resource` that hands out
time intervals. A request wanting the resource at time ``t`` for ``d``
cycles is granted the earliest gap of length ``d`` starting at or after
``t`` -- so a tag-match arriving *before* a far-future replacement-chain
reservation correctly slips in front of it, exactly as the hardware would
serve it first.

Reservations already granted are never displaced (no preemption), which
keeps the model causal and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError


@dataclass
class FloorClock:
    """Shared monotone lower bound on all future request times.

    One clock is shared by every resource of a geometry so the driver can
    advance it once per access instead of touching hundreds of resources.
    """

    time: int = 0

    def advance(self, time: int) -> None:
        if time > self.time:
            self.time = time

    def reset(self) -> None:
        self.time = 0


@dataclass
class Resource:
    """A single-server resource granting earliest-fit time intervals.

    ``advance_floor`` lets the driver promise that no future request will
    start before a given time, allowing old intervals to be pruned so the
    busy list stays short over long runs.
    """

    name: str = "resource"
    busy_cycles: int = 0
    grants: int = 0
    queued_cycles: int = 0
    floor_clock: FloorClock | None = None
    _intervals: list[tuple[int, int]] = field(default_factory=list)
    _floor: int = 0

    def acquire(self, time: int, duration: int) -> int:
        """Reserve *duration* cycles at the earliest gap at/after *time*.

        Returns the start of the granted interval.
        """
        if duration < 0:
            raise SimulationError(f"{self.name}: negative duration {duration}")
        start = max(time, 0)
        if duration == 0:
            self.grants += 1
            return start
        self._prune()
        intervals = self._intervals
        placed_at = None
        for i, (busy_start, busy_end) in enumerate(intervals):
            if start + duration <= busy_start:
                placed_at = i
                break
            start = max(start, busy_end)
        if placed_at is None:
            intervals.append((start, start + duration))
        else:
            intervals.insert(placed_at, (start, start + duration))
        self.queued_cycles += start - time if start > time else 0
        self.busy_cycles += duration
        self.grants += 1
        return start

    def advance_floor(self, time: int) -> None:
        """Promise that no future ``acquire`` will ask for a start < *time*."""
        if time > self._floor:
            self._floor = time

    def _prune(self) -> None:
        floor = self._floor
        if self.floor_clock is not None and self.floor_clock.time > floor:
            floor = self.floor_clock.time
        if not self._intervals or floor <= 0:
            return
        keep_from = 0
        for keep_from, (_, busy_end) in enumerate(self._intervals):
            if busy_end > floor:
                break
        else:
            keep_from += 1
        if keep_from:
            del self._intervals[:keep_from]

    def is_free_at(self, time: int) -> bool:
        """True if an acquire of length 1 at *time* would start immediately."""
        for busy_start, busy_end in self._intervals:
            if busy_start <= time < busy_end:
                return False
            if busy_start > time:
                break
        return True

    @property
    def next_free(self) -> int:
        """End of the last reservation (0 when idle)."""
        return self._intervals[-1][1] if self._intervals else 0

    def utilization(self, horizon: int) -> float:
        """Fraction of ``[0, horizon)`` the resource was busy."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / horizon)

    def reset(self) -> None:
        """Return the resource to its initial idle state, keeping its name."""
        self._intervals.clear()
        self._floor = 0
        self.busy_cycles = 0
        self.grants = 0
        self.queued_cycles = 0


@dataclass
class OccupancyTracker:
    """A k-server resource (e.g. the 2-entry spike issue queue of a halo).

    Models *k* identical servers: each acquire is granted the earliest
    finishing server. Used where the paper provides small queues that allow
    limited concurrency rather than strict single occupancy.
    """

    servers: int
    name: str = "tracker"
    _free_at: list[int] = field(default_factory=list)
    grants: int = 0
    queued_cycles: int = 0

    def __post_init__(self) -> None:
        if self.servers <= 0:
            raise SimulationError(f"{self.name}: servers must be positive")
        if not self._free_at:
            self._free_at = [0] * self.servers

    def acquire(self, time: int, duration: int) -> int:
        """Reserve one server for *duration* cycles at or after *time*."""
        if duration < 0:
            raise SimulationError(f"{self.name}: negative duration {duration}")
        best = min(range(self.servers), key=lambda i: self._free_at[i])
        start = max(time, self._free_at[best])
        self.queued_cycles += start - time
        self._free_at[best] = start + duration
        self.grants += 1
        return start

    def reset(self) -> None:
        """Return all servers to idle."""
        self._free_at = [0] * self.servers
        self.grants = 0
        self.queued_cycles = 0
