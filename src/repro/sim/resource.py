"""Occupancy-based resources for the transaction-level simulator.

The transaction-level cache simulator does not simulate individual flits;
instead every contended component (a cache bank, a network channel, a spike
issue queue, the memory controller) is a :class:`Resource` that hands out
time intervals. A request wanting the resource at time ``t`` for ``d``
cycles is granted the earliest gap of length ``d`` starting at or after
``t`` -- so a tag-match arriving *before* a far-future replacement-chain
reservation correctly slips in front of it, exactly as the hardware would
serve it first.

Reservations already granted are never displaced (no preemption), which
keeps the model causal and deterministic.

The busy list is kept as two parallel sorted lists (interval starts and
ends), so placement is a binary search plus a short forward scan from the
first candidate gap instead of a linear walk over every reservation.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass
class FloorClock:
    """Shared monotone lower bound on all future request times.

    One clock is shared by every resource of a geometry so the driver can
    advance it once per access instead of touching hundreds of resources.
    """

    time: int = 0

    def advance(self, time: int) -> None:
        if time > self.time:
            self.time = time

    def reset(self) -> None:
        self.time = 0


class Resource:
    """A single-server resource granting earliest-fit time intervals.

    ``advance_floor`` lets the driver promise that no future request will
    start before a given time, allowing old intervals to be pruned so the
    busy list stays short over long runs.
    """

    __slots__ = (
        "name",
        "busy_cycles",
        "grants",
        "queued_cycles",
        "waits",
        "floor_clock",
        "_starts",
        "_ends",
        "_floor",
    )

    def __init__(
        self, name: str = "resource", floor_clock: FloorClock | None = None
    ) -> None:
        self.name = name
        self.busy_cycles = 0
        self.grants = 0
        self.queued_cycles = 0
        #: Number of grants that could not start at their requested time --
        #: the transaction-level analogue of a failed same-cycle allocation.
        self.waits = 0
        self.floor_clock = floor_clock
        self._starts: list[int] = []
        self._ends: list[int] = []
        self._floor = 0

    @property
    def _intervals(self) -> list[tuple[int, int]]:
        """Busy intervals as (start, end) pairs (for tests/debugging)."""
        return list(zip(self._starts, self._ends))

    def acquire(self, time: int, duration: int) -> int:
        """Reserve *duration* cycles at the earliest gap at/after *time*.

        Returns the start of the granted interval.
        """
        if duration < 0:
            raise SimulationError(f"{self.name}: negative duration {duration}")
        start = time if time > 0 else 0
        if duration == 0:
            self.grants += 1
            return start
        self._prune()
        starts = self._starts
        ends = self._ends
        # All reservations starting at or before `start` are behind us; only
        # the latest of them can still be busy (intervals are disjoint).
        i = bisect_right(starts, start)
        if i and ends[i - 1] > start:
            start = ends[i - 1]
        n = len(starts)
        while i < n and starts[i] - start < duration:
            start = ends[i]
            i += 1
        starts.insert(i, start)
        ends.insert(i, start + duration)
        if start > time:
            self.queued_cycles += start - time
            self.waits += 1
        self.busy_cycles += duration
        self.grants += 1
        return start

    def advance_floor(self, time: int) -> None:
        """Promise that no future ``acquire`` will ask for a start < *time*."""
        if time > self._floor:
            self._floor = time

    def _prune(self) -> None:
        floor = self._floor
        clock = self.floor_clock
        if clock is not None and clock.time > floor:
            floor = self._floor = clock.time
        ends = self._ends
        if not ends or floor <= 0:
            return
        keep_from = bisect_right(ends, floor)
        if keep_from:
            del self._starts[:keep_from]
            del ends[:keep_from]

    def is_free_at(self, time: int) -> bool:
        """True if an acquire of length 1 at *time* would start immediately."""
        i = bisect_right(self._starts, time)
        return not i or self._ends[i - 1] <= time

    @property
    def next_free(self) -> int:
        """End of the last reservation (0 when idle)."""
        return self._ends[-1] if self._ends else 0

    def utilization(self, horizon: int) -> float:
        """Fraction of ``[0, horizon)`` the resource was busy."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / horizon)

    def reset(self) -> None:
        """Return the resource to its initial idle state, keeping its name."""
        self._starts.clear()
        self._ends.clear()
        self._floor = 0
        self.busy_cycles = 0
        self.grants = 0
        self.queued_cycles = 0
        self.waits = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Resource(name={self.name!r}, reservations={len(self._starts)})"


class OccupancyTracker:
    """A k-server resource (e.g. the 2-entry spike issue queue of a halo).

    Models *k* identical servers: each acquire is granted the earliest
    finishing server. Used where the paper provides small queues that allow
    limited concurrency rather than strict single occupancy.
    """

    __slots__ = ("servers", "name", "_free_at", "grants", "queued_cycles",
                 "waits")

    def __init__(self, servers: int, name: str = "tracker") -> None:
        if servers <= 0:
            raise SimulationError(f"{name}: servers must be positive")
        self.servers = servers
        self.name = name
        self._free_at = [0] * servers
        self.grants = 0
        self.queued_cycles = 0
        self.waits = 0

    def acquire(self, time: int, duration: int) -> int:
        """Reserve one server for *duration* cycles at or after *time*."""
        if duration < 0:
            raise SimulationError(f"{self.name}: negative duration {duration}")
        free_at = self._free_at
        best = min(range(self.servers), key=free_at.__getitem__)
        start = max(time, free_at[best])
        if start > time:
            self.queued_cycles += start - time
            self.waits += 1
        free_at[best] = start + duration
        self.grants += 1
        return start

    def reset(self) -> None:
        """Return all servers to idle."""
        self._free_at = [0] * self.servers
        self.grants = 0
        self.queued_cycles = 0
        self.waits = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OccupancyTracker(servers={self.servers}, name={self.name!r})"
