"""repro: reproduction of "A Domain-Specific On-Chip Network Design for
Large Scale Cache Systems" (Jin, Kim & Yum, HPCA 2007).

Public API highlights:

* :class:`repro.core.NetworkedCacheSystem` -- build a Table-3 design with a
  replacement scheme and run L2 access traces through it;
* :mod:`repro.workloads` -- the Table-2 benchmark profiles and synthetic
  trace generators;
* :mod:`repro.noc` -- the flit-level single-cycle multicast router and
  network fabric (meshes, simplified meshes, halos; XY/XYX routing);
* :mod:`repro.area` -- bank/router/link area and wire-delay models behind
  Table 4;
* :mod:`repro.experiments` -- drivers regenerating every evaluation figure
  and table of the paper.
"""

from repro.config import SystemConfig
from repro.core.designs import DESIGN_NAMES, design_spec, make_design
from repro.core.flows import FIGURE8_SCHEMES, Scheme, make_scheme
from repro.core.system import NetworkedCacheSystem, RunResult
from repro.workloads import BENCHMARKS, generate_trace, profile_by_name

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "NetworkedCacheSystem",
    "RunResult",
    "DESIGN_NAMES",
    "design_spec",
    "make_design",
    "Scheme",
    "make_scheme",
    "FIGURE8_SCHEMES",
    "BENCHMARKS",
    "profile_by_name",
    "generate_trace",
    "__version__",
]
