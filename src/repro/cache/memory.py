"""Off-chip memory timing model (Table 1).

Pipelined: an access observes ``130 + 4 * ceil(bytes/8)`` cycles of latency
(162 for a 64 B block), but the pipeline accepts a new transfer only every
``4 * ceil(bytes/8)`` cycles, so back-to-back fills and write-backs queue
on the memory channel.
"""

from __future__ import annotations

from repro import config
from repro.sim.resource import Resource


class MemoryModel:
    """A bandwidth-limited, fixed-latency memory behind one channel."""

    def __init__(self, block_size: int = config.BLOCK_SIZE_BYTES) -> None:
        self.block_size = block_size
        self.channel = Resource(name="memory-channel")
        self.reads = 0
        self.writebacks = 0

    @property
    def transfer_cycles(self) -> int:
        """Pipeline occupancy of one block transfer."""
        chunks = (self.block_size + 7) // 8
        return config.MEMORY_CYCLES_PER_8B * chunks

    @property
    def access_latency(self) -> int:
        """Start-to-data latency of one block access."""
        return config.memory_access_latency(self.block_size)

    def read(self, time: int) -> tuple[int, int]:
        """Issue a block read at *time*.

        Returns ``(start, data_ready)``: the cycle the channel accepted the
        request and the cycle the block is available on-chip.
        """
        start = self.channel.acquire(time, self.transfer_cycles)
        self.reads += 1
        return start, start + self.access_latency

    def writeback(self, time: int) -> tuple[int, int]:
        """Issue a dirty-block write-back at *time*.

        Returns ``(start, done)``; the writer only occupies the channel, it
        does not wait for the full round-trip.
        """
        start = self.channel.acquire(time, self.transfer_cycles)
        self.writebacks += 1
        return start, start + self.transfer_cycles

    def reset(self) -> None:
        self.channel.reset()
        self.reads = 0
        self.writebacks = 0
