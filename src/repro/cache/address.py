"""32-bit address decomposition (Section 5).

``tag (12) | index (10) | bank-column (4) | offset (6)``

The *bank-column* field picks one of the 16 columns of the network (one
bank set group); the *index* picks the set inside every bank of that
column; the ways of the set are spread over the column's banks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import AddressLayout
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Address:
    """A decoded physical address."""

    raw: int
    tag: int
    index: int
    column: int
    offset: int

    @property
    def block_address(self) -> int:
        """Address with the offset bits cleared (block granularity)."""
        return self.raw - self.offset

    @property
    def set_key(self) -> tuple[int, int]:
        """(column, index) identifying the bank set this address maps to."""
        return (self.column, self.index)


class AddressMapper:
    """Encode/decode addresses according to an :class:`AddressLayout`."""

    def __init__(self, layout: AddressLayout | None = None) -> None:
        self.layout = layout or AddressLayout()
        lay = self.layout
        self._offset_mask = (1 << lay.offset_bits) - 1
        self._column_mask = (1 << lay.column_bits) - 1
        self._index_mask = (1 << lay.index_bits) - 1
        self._tag_mask = (1 << lay.tag_bits) - 1
        self._column_shift = lay.offset_bits
        self._index_shift = lay.offset_bits + lay.column_bits
        self._tag_shift = lay.offset_bits + lay.column_bits + lay.index_bits

    def decode(self, raw: int) -> Address:
        """Split a raw 32-bit address into its fields."""
        if raw < 0 or raw >= (1 << 32):
            raise ConfigurationError(f"address {raw:#x} is not a 32-bit value")
        return Address(
            raw=raw,
            tag=(raw >> self._tag_shift) & self._tag_mask,
            index=(raw >> self._index_shift) & self._index_mask,
            column=(raw >> self._column_shift) & self._column_mask,
            offset=raw & self._offset_mask,
        )

    def encode(self, tag: int, index: int, column: int, offset: int = 0) -> int:
        """Compose a raw address from field values (range-checked)."""
        if not 0 <= tag <= self._tag_mask:
            raise ConfigurationError(f"tag {tag} out of range")
        if not 0 <= index <= self._index_mask:
            raise ConfigurationError(f"index {index} out of range")
        if not 0 <= column <= self._column_mask:
            raise ConfigurationError(f"column {column} out of range")
        if not 0 <= offset <= self._offset_mask:
            raise ConfigurationError(f"offset {offset} out of range")
        return (
            (tag << self._tag_shift)
            | (index << self._index_shift)
            | (column << self._column_shift)
            | offset
        )

    @property
    def num_columns(self) -> int:
        return self.layout.num_columns

    @property
    def sets_per_bank(self) -> int:
        return self.layout.sets_per_bank

    def block_number(self, raw: int) -> int:
        """Sequential block number (address without the offset bits)."""
        return raw >> self.layout.offset_bits
