"""The full L2 contents: every bank set of every column.

Bank sets are materialized lazily (a 16 MB cache has 16K sets, most of
which small traces never touch). All sets in a column share the same
``bank_of_way`` mapping derived from the column's bank descriptors.
"""

from __future__ import annotations

from repro.cache.address import Address, AddressMapper
from repro.cache.bank import BankDescriptor, bank_of_way
from repro.cache.bankset import AccessOutcome, BankSetState, BankSetStats
from repro.cache.replacement import ReplacementPolicy
from repro.errors import ConfigurationError


class CacheArray:
    """Contents simulation for the whole banked L2."""

    def __init__(
        self,
        columns: list[list[BankDescriptor]],
        policy: ReplacementPolicy,
        mapper: AddressMapper | None = None,
    ) -> None:
        if not columns:
            raise ConfigurationError("cache needs at least one column")
        self.columns = columns
        self.policy = policy
        self.mapper = mapper or AddressMapper()
        if len(columns) != self.mapper.num_columns:
            raise ConfigurationError(
                f"{len(columns)} columns but the address layout selects "
                f"{self.mapper.num_columns}"
            )
        self._bank_of_way = [bank_of_way(descriptors) for descriptors in columns]
        self._sets: dict[tuple[int, int], BankSetState] = {}
        self.stats = BankSetStats()
        #: Optional content validator (see repro.validation.invariants):
        #: when set, ``validator.on_access`` sees each access's before/after
        #: set state and its outcome. None in normal runs.
        self.validator = None

    def associativity(self, column: int) -> int:
        return len(self._bank_of_way[column])

    def set_state(self, column: int, index: int) -> BankSetState:
        """The (lazily created) bank set at (column, index)."""
        key = (column, index)
        state = self._sets.get(key)
        if state is None:
            state = BankSetState(self._bank_of_way[column])
            self._sets[key] = state
        return state

    def access(self, address: Address, is_write: bool = False) -> AccessOutcome:
        """Apply one access to the contents and record statistics."""
        state = self.set_state(address.column, address.index)
        if self.validator is None:
            outcome = self.policy.access(state, address.tag, is_write)
        else:
            before = state.resident_tags()
            outcome = self.policy.access(state, address.tag, is_write)
            self.validator.on_access(address, before, state, outcome)
        self.stats.record(outcome)
        return outcome

    def access_raw(self, raw_address: int, is_write: bool = False) -> AccessOutcome:
        return self.access(self.mapper.decode(raw_address), is_write)

    @property
    def touched_sets(self) -> int:
        return len(self._sets)

    def occupancy(self) -> int:
        """Number of resident blocks across all materialized sets."""
        return sum(
            sum(1 for block in state.ways if block is not None)
            for state in self._sets.values()
        )

    def contents_digest(self) -> str:
        """Deterministic digest of every materialized set's exact contents.

        Two arrays that saw the same access sequence under the same policy
        produce the same digest -- the differential oracle's final-contents
        observable.
        """
        import hashlib

        digest = hashlib.sha256()
        for key in sorted(self._sets):
            digest.update(repr((key, self._sets[key].signature())).encode())
        return digest.hexdigest()[:16]
