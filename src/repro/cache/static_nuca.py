"""S-NUCA: the static baseline the paper contrasts D-NUCA against (§2).

In a Static NUCA there is no migration: every *set* lives, whole, in one
bank determined by address bits. A lookup goes straight to that bank (no
bank-set search, no multicast), and the access time is that bank's fixed
distance -- the farther sets are permanently slow, which is exactly the
"access latency determined by the slowest subbank" problem NUCA papers
attack.

Capacity and associativity match the D-NUCA configuration: the same
(column, index) sets with the same 16 ways, just pinned to a single home
bank each (``(index + column) % banks`` staggers sets across rows so the
bank distance distribution is uniform).
"""

from __future__ import annotations

from repro.cache.address import Address
from repro.cache.bankset import AccessOutcome, BankSetState
from repro.errors import ConfigurationError


class StaticNUCAArray:
    """Contents of a Static NUCA: each set whole in its home bank."""

    def __init__(self, columns: int = 16, banks_per_column: int = 16,
                 associativity: int = 16) -> None:
        if columns < 1 or banks_per_column < 1 or associativity < 1:
            raise ConfigurationError("dimensions must be positive")
        self.columns = columns
        self.banks_per_column = banks_per_column
        self.associativity = associativity
        self._sets: dict[tuple[int, int], BankSetState] = {}
        self.hits = 0
        self.misses = 0

    def home_bank(self, address: Address) -> int:
        """The fixed bank position the whole set lives in."""
        return (address.index + address.column) % self.banks_per_column

    def set_state(self, address: Address) -> BankSetState:
        key = (address.column, address.index)
        state = self._sets.get(key)
        if state is None:
            bank = self.home_bank(address)
            # All ways live in the same physical bank.
            state = BankSetState([bank] * self.associativity)
            self._sets[key] = state
        return state

    def access(self, address: Address, is_write: bool = False) -> AccessOutcome:
        """LRU access within the set's home bank."""
        bank = self.home_bank(address)
        state = self.set_state(address)
        way = state.find(address.tag)
        if way is None:
            victim, moves = state.fill_front(address.tag, dirty=is_write)
            self.misses += 1
            return AccessOutcome(hit=False, moved_boundaries=moves,
                                 victim=victim)
        state.move_to_front(way)  # in-bank LRU update: free
        if is_write:
            state.mark_dirty(0)
        self.hits += 1
        return AccessOutcome(hit=True, way=way, bank=bank)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
