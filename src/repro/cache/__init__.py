"""Large-scale banked L2 cache substrate (D-NUCA style, Section 3.2).

The cache is broken into banks reachable over the on-chip network. A
*bank set* is one set of the set-associative cache distributed across the
banks of one column (mesh) or one spike (halo); the low-order bank-column
address bits select the column, the index selects the set within each bank,
and a tag match over the distributed ways finds the block.
"""

from repro.cache.address import Address, AddressMapper
from repro.cache.bank import BankDescriptor, bank_descriptors_for_column
from repro.cache.bankset import AccessOutcome, BankSetState, BlockState
from repro.cache.replacement import (
    FastLRUPolicy,
    LRUPolicy,
    PromotionPolicy,
    ReplacementPolicy,
    policy_by_name,
)
from repro.cache.memory import MemoryModel
from repro.cache.array import CacheArray

__all__ = [
    "Address",
    "AddressMapper",
    "BankDescriptor",
    "bank_descriptors_for_column",
    "BankSetState",
    "BlockState",
    "AccessOutcome",
    "ReplacementPolicy",
    "LRUPolicy",
    "PromotionPolicy",
    "FastLRUPolicy",
    "policy_by_name",
    "MemoryModel",
    "CacheArray",
]
