"""Bank descriptors: capacity, way span, and Table-1 timing.

A *column* (mesh) or *spike* (halo) of banks implements one group of bank
sets. With uniform 64 KB banks each bank is direct-mapped and holds exactly
one way of the 16-way bank set. Non-uniform designs (D, F) build a column
from five banks -- 64 KB, 64 KB, 128 KB, 256 KB, 512 KB -- holding 1, 1, 2,
4, and 8 ways respectively, so capacity (and access time) grows with
distance from the core while associativity stays 16.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import BankTiming
from repro.errors import ConfigurationError

#: The paper's non-uniform column: capacities in MRU -> LRU order.
NON_UNIFORM_COLUMN = (
    64 * 1024,
    64 * 1024,
    128 * 1024,
    256 * 1024,
    512 * 1024,
)


@dataclass(frozen=True)
class BankDescriptor:
    """One bank's position, way span, and timing inside a column."""

    position: int
    capacity_bytes: int
    way_start: int
    ways: int
    timing: BankTiming

    @property
    def way_range(self) -> range:
        """Global way indices of the bank-set stack this bank holds."""
        return range(self.way_start, self.way_start + self.ways)

    @property
    def is_mru_bank(self) -> bool:
        return self.position == 0


def bank_descriptors_for_column(
    capacities: list[int] | tuple[int, ...],
    block_size: int = 64,
    sets_per_bank: int = 1024,
) -> list[BankDescriptor]:
    """Build the descriptors of one column from bank capacities.

    Each bank's way count follows from its capacity: a bank of capacity C
    holds ``C / (block_size * sets_per_bank)`` ways of every set. The total
    across the column is the bank set's associativity.
    """
    descriptors: list[BankDescriptor] = []
    way_start = 0
    for position, capacity in enumerate(capacities):
        blocks = capacity // block_size
        if blocks % sets_per_bank:
            raise ConfigurationError(
                f"bank capacity {capacity} not divisible into {sets_per_bank} sets"
            )
        ways = blocks // sets_per_bank
        if ways < 1:
            raise ConfigurationError(
                f"bank capacity {capacity} holds no complete way"
            )
        descriptors.append(
            BankDescriptor(
                position=position,
                capacity_bytes=capacity,
                way_start=way_start,
                ways=ways,
                timing=BankTiming.for_capacity(capacity),
            )
        )
        way_start += ways
    return descriptors


def column_associativity(descriptors: list[BankDescriptor]) -> int:
    """Total ways provided by a column of banks."""
    return sum(d.ways for d in descriptors)


def bank_of_way(descriptors: list[BankDescriptor]) -> list[int]:
    """Map each global way index to the bank position that stores it."""
    mapping: list[int] = []
    for descriptor in descriptors:
        mapping.extend([descriptor.position] * descriptor.ways)
    return mapping
