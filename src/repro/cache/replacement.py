"""Replacement policies: Promotion, LRU, and Fast-LRU (content semantics).

The three policies place blocks differently on a hit:

* **LRU** keeps the bank set a true LRU stack -- the hit block moves to the
  MRU bank and everything closer shifts one bank away (many swaps, but the
  MRU banks concentrate future hits; the paper measures 14 % higher hit
  rate and 5-19 % more MRU-bank hits than Promotion).
* **Promotion** (D-NUCA's policy) moves the hit block only one bank closer
  per hit.
* **Fast-LRU** maintains exactly the LRU ordering; it differs from LRU only
  in *when* the block movements happen (overlapped with tag matching).
  Content-wise it is LRU, which tests assert as an invariant.

On a miss all three fill at the MRU way and demote the stack (Promotion's
recursive replacement, footnote 4 of the paper).
"""

from __future__ import annotations

from repro.cache.bankset import AccessOutcome, BankSetState
from repro.errors import ConfigurationError


class ReplacementPolicy:
    """Strategy applying one access to a bank set's contents."""

    name = "base"
    #: True when the policy's timing overlaps tag match with replacement.
    overlaps_replacement = False

    def access(
        self, state: BankSetState, tag: int, is_write: bool = False
    ) -> AccessOutcome:
        """Look up *tag*, update contents, and report what happened."""
        way = state.find(tag)
        if way is None:
            return self._miss(state, tag, is_write)
        return self._hit(state, way, is_write)

    def _hit(self, state: BankSetState, way: int, is_write: bool) -> AccessOutcome:
        raise NotImplementedError

    def _miss(self, state: BankSetState, tag: int, is_write: bool) -> AccessOutcome:
        victim, moves = state.fill_front(tag, dirty=is_write)
        return AccessOutcome(
            hit=False, way=None, bank=None, moved_boundaries=moves, victim=victim
        )


class LRUPolicy(ReplacementPolicy):
    """True LRU ordering maintained with sequential post-hit swaps."""

    name = "lru"

    def _hit(self, state: BankSetState, way: int, is_write: bool) -> AccessOutcome:
        bank = state.bank_of(way)
        moves = state.move_to_front(way)
        if is_write:
            state.mark_dirty(0)
        return AccessOutcome(hit=True, way=way, bank=bank, moved_boundaries=moves)


class FastLRUPolicy(LRUPolicy):
    """LRU contents; replacement overlapped with tag delivery (Section 3.2)."""

    name = "fast_lru"
    overlaps_replacement = True


class PromotionPolicy(ReplacementPolicy):
    """D-NUCA promotion: the hit block moves one bank closer per hit.

    ``miss_policy`` selects the footnote-4 fill variant:

    * ``recursive`` (default, what this paper implements): the new block
      enters the MRU way and the whole stack demotes, evicting the LRU;
    * ``zero_copy``: the new block overwrites the MRU way; its previous
      occupant is evicted straight to memory (cheap, but can throw away
      the hottest block);
    * ``one_copy``: the displaced MRU block demotes one way and *that*
      way's occupant is evicted.
    """

    name = "promotion"
    MISS_POLICIES = ("recursive", "zero_copy", "one_copy")

    def __init__(self, miss_policy: str = "recursive") -> None:
        if miss_policy not in self.MISS_POLICIES:
            raise ConfigurationError(
                f"unknown miss policy {miss_policy!r}; "
                f"known: {self.MISS_POLICIES}"
            )
        self.miss_policy = miss_policy

    def _miss(self, state: BankSetState, tag: int, is_write: bool) -> AccessOutcome:
        if self.miss_policy == "zero_copy":
            victim = state.fill_replace_front(tag, dirty=is_write)
            return AccessOutcome(
                hit=False, victim=victim, victim_bank=state.bank_of_way[0]
            )
        if self.miss_policy == "one_copy":
            victim, moves = state.fill_demote_one(tag, dirty=is_write)
            victim_bank = state.bank_of_way[min(1, len(state.bank_of_way) - 1)]
            return AccessOutcome(
                hit=False, victim=victim, moved_boundaries=moves,
                victim_bank=victim_bank,
            )
        return super()._miss(state, tag, is_write)

    def _hit(self, state: BankSetState, way: int, is_write: bool) -> AccessOutcome:
        bank = state.bank_of(way)
        moves = state.promote(way)
        if is_write:
            # The hit block now sits either at way 0 (MRU-bank local
            # promotion) or at the least-recent way of the next-closer bank.
            state.mark_dirty(self._current_way(state, way, bank))
        return AccessOutcome(hit=True, way=way, bank=bank, moved_boundaries=moves)

    @staticmethod
    def _current_way(state: BankSetState, original_way: int, bank: int) -> int:
        if bank == state.bank_of_way[0]:
            return 0
        return max(
            i for i, b in enumerate(state.bank_of_way) if b == bank - 1
        )


_POLICIES = {
    policy.name: policy for policy in (LRUPolicy, FastLRUPolicy, PromotionPolicy)
}

#: Spelling variants accepted by :func:`policy_by_name` (after lowercasing
#: and mapping ``-``/spaces to ``_``).
_POLICY_ALIASES = {
    "fastlru": "fast_lru",
    "fast_lru": "fast_lru",
    "promo": "promotion",
}


def policy_names() -> tuple[str, ...]:
    """Canonical policy names, in registry order."""
    return tuple(_POLICIES)


def policy_by_name(name: str) -> ReplacementPolicy:
    """Instantiate a policy by its registry name.

    Accepts case-insensitive aliases: ``fastlru``, ``fast-lru``, and
    ``fast lru`` all resolve to ``fast_lru``.
    """
    normalized = name.strip().lower().replace("-", "_").replace(" ", "_")
    normalized = _POLICY_ALIASES.get(normalized, normalized)
    try:
        return _POLICIES[normalized]()
    except KeyError:
        raise ConfigurationError(
            f"unknown replacement policy {name!r}; accepted: "
            f"{', '.join(_POLICIES)} (aliases: fastlru/fast-lru -> fast_lru)"
        ) from None
