"""Partial-tag early miss detection (the D-NUCA technique the paper's
introduction weighs against: it saves the full-column search on a miss at
the price of extra storage in the cache controller).

The controller keeps ``bits``-bit partial tags for every way of every
bank set. A lookup with no partial match is a *guaranteed* miss (partial
tags never produce false negatives) and can go straight to memory,
skipping the column search entirely; a partial match may still be a full
miss (false positive), in which case the normal search runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.bankset import BankSetState
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PartialTagConfig:
    """Controller-side partial-tag store parameters."""

    bits: int = 6

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 12:
            raise ConfigurationError("partial tag bits must be in [1, 12]")

    @property
    def mask(self) -> int:
        return (1 << self.bits) - 1

    def storage_bits(self, sets: int, associativity: int) -> int:
        """Extra controller storage the technique costs."""
        return sets * associativity * self.bits

    def storage_kib(self, sets: int, associativity: int) -> float:
        return self.storage_bits(sets, associativity) / 8 / 1024


class PartialTagStore:
    """Early-miss predictor backed by the true cache contents.

    The simulator keeps the authoritative contents in
    :class:`~repro.cache.bankset.BankSetState`; the store answers partial
    matches against them, which models a controller mirror kept exactly
    in sync (the paper's 'additional memory in the cache controller').
    """

    def __init__(self, config: PartialTagConfig | None = None) -> None:
        self.config = config or PartialTagConfig()
        self.lookups = 0
        self.early_misses = 0
        self.false_positives = 0

    def is_guaranteed_miss(self, state: BankSetState, tag: int,
                           actual_hit: bool) -> bool:
        """True when no way's partial tag matches (a certain miss).

        *actual_hit* is only used for false-positive accounting.
        """
        self.lookups += 1
        mask = self.config.mask
        wanted = tag & mask
        match = any(
            block is not None and (block.tag & mask) == wanted
            for block in state.ways
        )
        if not match:
            self.early_misses += 1
            return True
        if not actual_hit:
            self.false_positives += 1
        return False

    @property
    def early_miss_rate(self) -> float:
        """Fraction of lookups short-circuited to memory."""
        return self.early_misses / self.lookups if self.lookups else 0.0

    def reset(self) -> None:
        self.lookups = 0
        self.early_misses = 0
        self.false_positives = 0
