"""Logical contents of one distributed bank set.

A bank set is an ordered stack of ``associativity`` ways; way 0 lives in
the MRU (closest) bank and the last way in the LRU (farthest) bank
(Section 3.2). The *timing* of replacement differs radically between LRU,
Fast-LRU, and Promotion, but the *contents* evolve by two primitive
reorderings, implemented here:

* ``move_to_front`` -- LRU/Fast-LRU hit: the hit block becomes way 0 and
  everything above it shifts one way down (toward the LRU bank);
* ``swap`` -- Promotion hit: the hit block trades places with the
  least-recent way of the next-closer bank;
* ``fill_front`` -- miss fill: the new block enters way 0, everything
  shifts down, and the LRU way's block is evicted.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class BlockState:
    """One resident cache block."""

    tag: int
    dirty: bool = False


@dataclass(frozen=True)
class AccessOutcome:
    """What the content model decided for one access.

    ``way``/``bank`` describe where the tag matched (pre-reordering).
    ``moved_boundaries`` counts inter-bank block transfers implied by the
    reordering -- the block movements the network must carry.
    ``victim`` is the evicted block on a fill (``None`` when the LRU way
    was empty), with its dirty bit deciding the write-back.
    """

    hit: bool
    way: int | None = None
    bank: int | None = None
    moved_boundaries: int = 0
    victim: BlockState | None = None
    #: Bank position the victim departs from (None = the LRU bank).
    victim_bank: int | None = None

    @property
    def writeback_required(self) -> bool:
        return self.victim is not None and self.victim.dirty


class BankSetState:
    """Mutable stack of ways of one bank set."""

    __slots__ = ("ways", "bank_of_way")

    def __init__(self, bank_of_way: list[int]) -> None:
        if not bank_of_way:
            raise ValueError("bank_of_way must not be empty")
        self.bank_of_way = bank_of_way
        self.ways: list[BlockState | None] = [None] * len(bank_of_way)

    @property
    def associativity(self) -> int:
        return len(self.ways)

    def find(self, tag: int) -> int | None:
        """Way index holding *tag*, or None."""
        for way, block in enumerate(self.ways):
            if block is not None and block.tag == tag:
                return way
        return None

    def resident_tags(self) -> list[int]:
        return [block.tag for block in self.ways if block is not None]

    def signature(self) -> tuple:
        """Hashable snapshot of the set's exact contents and ordering.

        ``None`` marks an empty way; occupied ways contribute ``(tag,
        dirty)``. Used by content digests and conservation checks.
        """
        return tuple(
            None if block is None else (block.tag, block.dirty)
            for block in self.ways
        )

    def bank_of(self, way: int) -> int:
        return self.bank_of_way[way]

    # -- primitive reorderings -------------------------------------------

    def move_to_front(self, way: int) -> int:
        """LRU/Fast-LRU hit reordering; returns inter-bank moves implied.

        The hit block becomes way 0; ways ``0..way-1`` shift one position
        down the stack. A shift whose source and destination ways live in
        different banks is a network block transfer; in-bank reshuffles are
        free pointer updates.
        """
        block = self.ways[way]
        if block is None:
            raise ValueError(f"way {way} is empty")
        boundary_moves = 0
        if self.bank_of_way[way] != self.bank_of_way[0]:
            boundary_moves += 1  # the hit block itself crosses banks
        for i in range(way - 1, -1, -1):
            if self.bank_of_way[i] != self.bank_of_way[i + 1]:
                boundary_moves += 1
            self.ways[i + 1] = self.ways[i]
        self.ways[0] = block
        return boundary_moves

    def promote(self, way: int) -> int:
        """Promotion hit reordering; returns inter-bank moves implied.

        Inside the MRU bank the block just becomes that bank's most recent
        way (free). Otherwise the hit block swaps with the least-recent way
        of the next-closer bank (two block transfers over one link).
        """
        block = self.ways[way]
        if block is None:
            raise ValueError(f"way {way} is empty")
        bank = self.bank_of_way[way]
        if bank == self.bank_of_way[0]:
            # Local promotion inside the MRU bank: reorder ways 0..way.
            for i in range(way - 1, -1, -1):
                self.ways[i + 1] = self.ways[i]
            self.ways[0] = block
            return 0
        # Least-recent way of the next-closer bank.
        target = max(i for i, b in enumerate(self.bank_of_way) if b == bank - 1)
        self.ways[way], self.ways[target] = self.ways[target], self.ways[way]
        return 2

    def fill_front(self, tag: int, dirty: bool = False) -> tuple[BlockState | None, int]:
        """Miss fill: insert at way 0, shift everything down, evict the LRU.

        Returns ``(victim, boundary_moves)``. Used by LRU, Fast-LRU, and
        Promotion alike (Promotion's recursive replacement, footnote 4).
        """
        victim = self.ways[-1]
        boundary_moves = 0
        for i in range(len(self.ways) - 2, -1, -1):
            if self.ways[i] is not None and self.bank_of_way[i] != self.bank_of_way[i + 1]:
                boundary_moves += 1
            self.ways[i + 1] = self.ways[i]
        self.ways[0] = BlockState(tag=tag, dirty=dirty)
        return victim, boundary_moves

    def fill_replace_front(self, tag: int, dirty: bool = False) -> BlockState | None:
        """Zero-copy fill (footnote 4): the incoming block overwrites the
        MRU way outright; its previous occupant is evicted to memory."""
        victim = self.ways[0]
        self.ways[0] = BlockState(tag=tag, dirty=dirty)
        return victim

    def fill_demote_one(self, tag: int, dirty: bool = False) -> tuple[BlockState | None, int]:
        """One-copy fill (footnote 4): the incoming block takes the MRU
        way; the displaced block demotes one way, evicting *that* way's
        occupant. Returns (victim, boundary_moves)."""
        if len(self.ways) == 1:
            return self.fill_replace_front(tag, dirty), 0
        victim = self.ways[1]
        moves = 1 if self.bank_of_way[0] != self.bank_of_way[1] else 0
        self.ways[1] = self.ways[0]
        self.ways[0] = BlockState(tag=tag, dirty=dirty)
        return victim, moves

    def mark_dirty(self, way: int) -> None:
        block = self.ways[way]
        if block is None:
            raise ValueError(f"way {way} is empty")
        block.dirty = True


@dataclass
class BankSetStats:
    """Aggregated content statistics across a run."""

    hits: int = 0
    misses: int = 0
    hits_per_bank: dict[int, int] = field(default_factory=dict)
    writebacks: int = 0
    boundary_moves: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def record(self, outcome: AccessOutcome) -> None:
        if outcome.hit:
            self.hits += 1
            self.hits_per_bank[outcome.bank] = (
                self.hits_per_bank.get(outcome.bank, 0) + 1
            )
        else:
            self.misses += 1
            if outcome.writeback_required:
                self.writebacks += 1
        self.boundary_moves += outcome.moved_boundaries

    def mru_hit_fraction(self) -> float:
        """Fraction of hits landing in the MRU (closest) bank."""
        if not self.hits:
            return 0.0
        return self.hits_per_bank.get(0, 0) / self.hits

    def publish_metrics(self, registry) -> None:
        """Export content counters into a telemetry registry."""
        registry.counter("cache.bankset.hits").set(self.hits)
        registry.counter("cache.bankset.misses").set(self.misses)
        registry.counter("cache.bankset.writebacks").set(self.writebacks)
        registry.counter("cache.bankset.boundary_moves").set(
            self.boundary_moves
        )
        registry.counter("cache.bankset.hits_mru").set(
            self.hits_per_bank.get(0, 0)
        )
        # Replacement-policy view of the same run: every miss triggers a
        # fill, and a dirty victim becomes a write-back.
        registry.counter("cache.replacement.fills").set(self.misses)
        registry.counter("cache.replacement.dirty_evictions").set(
            self.writebacks
        )
