"""Structured trace sinks: per-flit and per-transaction lifecycle events.

The simulator layers emit lifecycle events (``inject`` -> ``route`` ->
``vc_alloc`` -> ``traverse`` -> ``eject`` for flits; ``miss`` ->
``multicast`` -> ``memory`` -> ``mru_fill`` for cache transactions) through
a process-wide *trace sink*. Three sinks exist:

* :class:`NullSink` -- the default; ``enabled`` is ``False`` and every
  instrumentation site guards on it, so a disabled run pays one attribute
  check per *event site*, not per event (the zero-overhead fast path);
* :class:`JsonlTraceSink` -- one compact JSON object per line, written
  streaming; byte-identical across identical runs;
* :class:`ChromeTraceSink` -- Chrome ``trace_event`` JSON that loads
  directly in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.

Determinism contract: every timestamp is **simulation time** (cycles) --
never wall-clock -- and thread/track identifiers are assigned in
deterministic first-use order, so two runs of the same cell produce
byte-identical trace files that diff cleanly.
"""

from __future__ import annotations

import json
from typing import Any, TextIO

from repro.errors import TelemetryError

#: The JSON-able ``args`` payload attached to an event. Values must be
#: pure functions of simulation state -- never wall-clock or host identity.
EventArgs = dict[str, Any]

#: The ``ph`` phase letters used from the Chrome trace_event vocabulary:
#: ``i`` instant, ``X`` complete (ts + dur), ``C`` counter sample.
_KNOWN_PHASES = ("i", "X", "C")


class TraceSink:
    """Interface every sink implements; also usable as a base class."""

    #: Instrumentation sites skip all event construction when False.
    enabled = False

    def emit(
        self,
        name: str,
        cat: str,
        ts: int,
        tid: object = 0,
        ph: str = "i",
        dur: int | None = None,
        args: EventArgs | None = None,
    ) -> None:
        raise NotImplementedError

    def instant(
        self,
        name: str,
        cat: str,
        ts: int,
        tid: object = 0,
        args: EventArgs | None = None,
    ) -> None:
        self.emit(name, cat, ts, tid=tid, ph="i", args=args)

    def complete(
        self,
        name: str,
        cat: str,
        ts: int,
        dur: int,
        tid: object = 0,
        args: EventArgs | None = None,
    ) -> None:
        self.emit(name, cat, ts, tid=tid, ph="X", dur=dur, args=args)

    def close(self) -> None:
        """Flush and release the underlying file (idempotent)."""


class NullSink(TraceSink):
    """Discards everything; the always-installed default."""

    enabled = False

    def emit(
        self,
        name: str,
        cat: str,
        ts: int,
        tid: object = 0,
        ph: str = "i",
        dur: int | None = None,
        args: EventArgs | None = None,
    ) -> None:
        pass


NULL_SINK = NullSink()


class JsonlTraceSink(TraceSink):
    """One JSON object per line, streamed to *path* as events arrive.

    Keys are sorted and separators compact, so identical event streams
    produce byte-identical files.
    """

    enabled = True

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle: TextIO | None = open(path, "w", encoding="utf-8")
        self.events_written = 0

    def emit(
        self,
        name: str,
        cat: str,
        ts: int,
        tid: object = 0,
        ph: str = "i",
        dur: int | None = None,
        args: EventArgs | None = None,
    ) -> None:
        if self._handle is None:
            raise TelemetryError(f"trace sink for {self.path!r} is closed")
        record: dict[str, Any] = {
            "name": name, "cat": cat, "ph": ph, "ts": ts, "tid": str(tid)
        }
        if dur is not None:
            record["dur"] = dur
        if args:
            record["args"] = args
        self._handle.write(json.dumps(record, sort_keys=True,
                                      separators=(",", ":")))
        self._handle.write("\n")
        self.events_written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class ChromeTraceSink(TraceSink):
    """Chrome ``trace_event`` JSON (the Perfetto-loadable format).

    Events accumulate in memory and :meth:`close` writes one
    ``{"traceEvents": [...]}`` document. Track (``tid``) labels -- column
    ids, router nodes -- are mapped to small integers in deterministic
    first-use order, and ``thread_name`` metadata events name each track,
    so a run opens in Perfetto with human-readable rows. Timestamps are
    cycles reported in the format's microsecond field: 1 cycle reads as
    1 us in the viewer.
    """

    enabled = True

    def __init__(self, path: str) -> None:
        self.path = path
        self._events: list[dict[str, Any]] = []
        self._tids: dict[str, int] = {}
        self._closed = False

    def _tid(self, label: object) -> int:
        label = str(label)
        tid = self._tids.get(label)
        if tid is None:
            tid = len(self._tids)
            self._tids[label] = tid
        return tid

    def emit(
        self,
        name: str,
        cat: str,
        ts: int,
        tid: object = 0,
        ph: str = "i",
        dur: int | None = None,
        args: EventArgs | None = None,
    ) -> None:
        if ph not in _KNOWN_PHASES:
            raise TelemetryError(f"unknown trace phase {ph!r}")
        event: dict[str, Any] = {
            "name": name,
            "cat": cat,
            "ph": ph,
            "ts": ts,
            "pid": 0,
            "tid": self._tid(tid),
        }
        if ph == "i":
            event["s"] = "t"  # thread-scoped instant
        if dur is not None:
            event["dur"] = dur
        if args:
            event["args"] = args
        self._events.append(event)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        metadata: list[dict[str, Any]] = [
            {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
             "args": {"name": "repro-sim"}}
        ]
        for label, tid in self._tids.items():
            metadata.append(
                {"name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
                 "args": {"name": label}}
            )
        document = {"traceEvents": metadata + self._events,
                    "displayTimeUnit": "ms"}
        with open(self.path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, sort_keys=True,
                      separators=(",", ":"))
            handle.write("\n")

    @property
    def events_written(self) -> int:
        return len(self._events)


TRACE_FORMATS = ("jsonl", "chrome")


def open_sink(path: str, trace_format: str = "jsonl") -> TraceSink:
    """Create the sink for *path* in the requested format."""
    if trace_format == "jsonl":
        return JsonlTraceSink(path)
    if trace_format == "chrome":
        return ChromeTraceSink(path)
    raise TelemetryError(
        f"unknown trace format {trace_format!r}; known: {TRACE_FORMATS}"
    )


_current: TraceSink = NULL_SINK


def current_sink() -> TraceSink:
    """The process-wide active sink (the :data:`NULL_SINK` by default)."""
    return _current


def set_sink(sink: TraceSink | None) -> TraceSink:
    """Install *sink* (None reinstalls the null sink); returns the old one."""
    global _current
    previous = _current
    _current = sink if sink is not None else NULL_SINK
    return previous
