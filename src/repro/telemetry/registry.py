"""Hierarchical metrics registry: counters, gauges, and fixed-bucket
histograms.

Every layer of the simulator (``noc.router``, ``noc.network``,
``cache.bankset``, ``sim.kernel``, ...) publishes into a
:class:`MetricsRegistry` under dot-separated hierarchical names. The
registry is deliberately boring so that it can be deterministic:

* **counters** are monotone integers (merge = sum);
* **gauges** are high-water marks (merge = max);
* **histograms** use *fixed bucket edges supplied at registration* --
  never data-dependent edges -- so two runs of the same workload always
  produce bucket-for-bucket comparable (and mergeable) series.

A registry serializes to a plain JSON-able :meth:`MetricsRegistry.snapshot`
dict with sorted keys; snapshots from different processes (the ``--jobs``
worker pool) merge associatively and commutatively, which is what makes
serial and parallel sweeps produce identical merged metrics.
"""

from __future__ import annotations

from typing import Any, Callable, cast

from repro.errors import TelemetryError

#: A serialized metric: the plain JSON-able dict :meth:`snapshot` emits.
Snapshot = dict[str, Any]


class Counter:
    """A monotone event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def set(self, value: int) -> None:
        """Publish an absolute count kept elsewhere (end-of-run exports)."""
        self.value = value

    def snapshot(self) -> Snapshot:
        return {"type": "counter", "value": self.value}

    def merge(self, other: Snapshot) -> None:
        self.value += other["value"]

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A high-water mark (merge keeps the maximum)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def update_max(self, value: float) -> None:
        if value > self.value:
            self.value = value

    def snapshot(self) -> Snapshot:
        return {"type": "gauge", "value": self.value}

    def merge(self, other: Snapshot) -> None:
        if other["value"] > self.value:
            self.value = other["value"]

    def reset(self) -> None:
        self.value = 0


class Histogram:
    """A fixed-edge histogram.

    ``edges`` are the *upper* bounds of the first ``len(edges)`` buckets;
    one overflow bucket catches everything above the last edge. Edges are
    part of the metric's identity: registering or merging the same name
    with different edges raises :class:`TelemetryError` instead of
    silently resampling, so series stay comparable across runs and code
    versions.
    """

    __slots__ = ("edges", "counts", "total", "count")

    def __init__(self, edges: tuple[float, ...]) -> None:
        if not edges or list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise TelemetryError(
                f"histogram edges must be strictly increasing, got {edges!r}"
            )
        self.edges = tuple(edges)
        self.counts = [0] * (len(edges) + 1)
        self.total: float = 0
        self.count = 0

    def record(self, value: float) -> None:
        counts = self.counts
        for i, edge in enumerate(self.edges):
            if value <= edge:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Snapshot:
        return {
            "type": "histogram",
            "edges": list(self.edges),
            "counts": list(self.counts),
            "total": self.total,
            "count": self.count,
        }

    def merge(self, other: Snapshot) -> None:
        if tuple(other["edges"]) != self.edges:
            raise TelemetryError(
                f"cannot merge histograms with different edges: "
                f"{self.edges} vs {tuple(other['edges'])}"
            )
        for i, count in enumerate(other["counts"]):
            self.counts[i] += count
        self.total += other["total"]
        self.count += other["count"]

    def reset(self) -> None:
        self.counts = [0] * (len(self.edges) + 1)
        self.total = 0
        self.count = 0


#: Any concrete metric a registry can hold.
Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """A named collection of metrics, hierarchical by dot-separated name."""

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def _get(
        self,
        name: str,
        kind: type[Metric],
        factory: Callable[[], Metric],
    ) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif type(metric) is not kind:
            raise TelemetryError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return cast(Counter, self._get(name, Counter, Counter))

    def gauge(self, name: str) -> Gauge:
        return cast(Gauge, self._get(name, Gauge, Gauge))

    def histogram(self, name: str, edges: tuple[float, ...]) -> Histogram:
        histogram = cast(
            Histogram, self._get(name, Histogram, lambda: Histogram(edges))
        )
        if histogram.edges != tuple(edges):
            raise TelemetryError(
                f"histogram {name!r} already registered with edges "
                f"{histogram.edges}, requested {tuple(edges)}"
            )
        return histogram

    # -- serialization and merging ---------------------------------------

    def snapshot(self) -> dict[str, Snapshot]:
        """Plain JSON-able dict of every metric, keys sorted."""
        return {
            name: self._metrics[name].snapshot()
            for name in sorted(self._metrics)
        }

    def merge(self, snapshot: dict[str, Snapshot] | None) -> None:
        """Fold a :meth:`snapshot` dict into this registry.

        Merging is associative and commutative (counters sum, gauges max,
        histograms add bucket-wise), so any grouping of per-cell snapshots
        -- serial, ``--jobs N``, or cache replay -- yields the same merged
        registry.
        """
        if not snapshot:
            return
        makers = {"counter": self.counter, "gauge": self.gauge}
        for name in sorted(snapshot):
            entry = snapshot[name]
            kind = entry["type"]
            if kind == "histogram":
                metric = self.histogram(name, tuple(entry["edges"]))
            else:
                try:
                    metric = makers[kind](name)
                except KeyError:
                    raise TelemetryError(
                        f"unknown metric type {kind!r} for {name!r}"
                    ) from None
            metric.merge(entry)

    def reset(self) -> None:
        """Zero every metric, keeping names and histogram edges."""
        for metric in self._metrics.values():
            metric.reset()

    def clear(self) -> None:
        """Forget every metric."""
        self._metrics.clear()


#: Fixed bucket edges for the per-access eviction-chain depth histogram
#: (in banks moved). Fixed here -- not derived from data -- so the series
#: diffs cleanly across runs and merges across processes (DESIGN.md §9).
CHAIN_DEPTH_EDGES = (0, 1, 2, 3, 4, 6, 8, 12, 16)

#: Fixed bucket edges for queueing/blocked-cycle histograms.
WAIT_CYCLE_EDGES = (0, 1, 2, 4, 8, 16, 32, 64, 128)

#: Fixed bucket edges for fault recovery-latency histograms (extra cycles
#: a message spent in timeout + backoff + retransmission before arriving).
RECOVERY_LATENCY_EDGES = (0, 16, 32, 64, 128, 256, 512, 1024, 2048)


_global = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide registry that batch runs merge into."""
    return _global


def reset_global_metrics() -> None:
    """Forget every process-wide metric (tests; fresh CLI invocations)."""
    _global.clear()
