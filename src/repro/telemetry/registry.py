"""Hierarchical metrics registry: counters, gauges, and fixed-bucket
histograms.

Every layer of the simulator (``noc.router``, ``noc.network``,
``cache.bankset``, ``sim.kernel``, ...) publishes into a
:class:`MetricsRegistry` under dot-separated hierarchical names. The
registry is deliberately boring so that it can be deterministic:

* **counters** are monotone integers (merge = sum);
* **gauges** are high-water marks (merge = max);
* **histograms** use *fixed bucket edges supplied at registration* --
  never data-dependent edges -- so two runs of the same workload always
  produce bucket-for-bucket comparable (and mergeable) series.

A registry serializes to a plain JSON-able :meth:`MetricsRegistry.snapshot`
dict with sorted keys; snapshots from different processes (the ``--jobs``
worker pool) merge associatively and commutatively, which is what makes
serial and parallel sweeps produce identical merged metrics.
"""

from __future__ import annotations

from typing import Any, Callable, cast

from repro.errors import TelemetryError

#: A serialized metric: the plain JSON-able dict :meth:`snapshot` emits.
Snapshot = dict[str, Any]


class Counter:
    """A monotone event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def set(self, value: int) -> None:
        """Publish an absolute count kept elsewhere (end-of-run exports)."""
        self.value = value

    def snapshot(self) -> Snapshot:
        return {"type": "counter", "value": self.value}

    def merge(self, other: Snapshot) -> None:
        self.value += other["value"]

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A high-water mark (merge keeps the maximum)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def update_max(self, value: float) -> None:
        if value > self.value:
            self.value = value

    def snapshot(self) -> Snapshot:
        return {"type": "gauge", "value": self.value}

    def merge(self, other: Snapshot) -> None:
        if other["value"] > self.value:
            self.value = other["value"]

    def reset(self) -> None:
        self.value = 0


class Histogram:
    """A fixed-edge histogram.

    ``edges`` are the *upper* bounds of the first ``len(edges)`` buckets;
    one overflow bucket catches everything above the last edge. Edges are
    part of the metric's identity: registering or merging the same name
    with different edges raises :class:`TelemetryError` instead of
    silently resampling, so series stay comparable across runs and code
    versions.
    """

    __slots__ = ("edges", "counts", "total", "count")

    def __init__(self, edges: tuple[float, ...]) -> None:
        if not edges or list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise TelemetryError(
                f"histogram edges must be strictly increasing, got {edges!r}"
            )
        self.edges = tuple(edges)
        self.counts = [0] * (len(edges) + 1)
        self.total: float = 0
        self.count = 0

    def record(self, value: float) -> None:
        counts = self.counts
        for i, edge in enumerate(self.edges):
            if value <= edge:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Snapshot:
        return {
            "type": "histogram",
            "edges": list(self.edges),
            "counts": list(self.counts),
            "total": self.total,
            "count": self.count,
        }

    def merge(self, other: Snapshot) -> None:
        if tuple(other["edges"]) != self.edges:
            raise TelemetryError(
                f"cannot merge histograms with different edges: "
                f"{self.edges} vs {tuple(other['edges'])}"
            )
        for i, count in enumerate(other["counts"]):
            self.counts[i] += count
        self.total += other["total"]
        self.count += other["count"]

    def reset(self) -> None:
        self.counts = [0] * (len(self.edges) + 1)
        self.total = 0
        self.count = 0

    def quantile(self, q: float) -> float:
        """Upper-edge estimate of the ``q`` quantile (see
        :func:`quantiles_from_counts`)."""
        return quantiles_from_counts(self.edges, self.counts, (q,))[
            _quantile_key(q)
        ]


def _quantile_key(q: float) -> str:
    """``0.95`` -> ``"p95"``; ``0.5`` -> ``"p50"``."""
    scaled = q * 100
    if scaled == int(scaled):
        return f"p{int(scaled)}"
    return f"p{scaled:g}".replace(".", "_")


def quantiles_from_counts(
    edges: tuple[float, ...] | list[float],
    counts: list[int],
    qs: tuple[float, ...] = (0.5, 0.95, 0.99),
) -> dict[str, float]:
    """Mergeable streaming quantiles from fixed-edge bucket counts.

    Returns the smallest bucket upper edge whose cumulative count reaches
    ``q * total`` -- a conservative (upper-bound) estimate that is exact
    under merging because bucket counts sum exactly. Values landing in the
    overflow bucket report the last edge. An empty histogram reports 0.
    """
    total = sum(counts)
    out: dict[str, float] = {}
    for q in qs:
        key = _quantile_key(q)
        if total == 0:
            out[key] = 0.0
            continue
        target = q * total
        cumulative = 0
        value = float(edges[-1])
        for i, count in enumerate(counts):
            cumulative += count
            if cumulative >= target:
                value = float(edges[min(i, len(edges) - 1)])
                break
        out[key] = value
    return out


#: Aggregations a :class:`Series` supports per window.
SERIES_AGGS = ("sum", "max", "hist")


class Series:
    """A windowed time series keyed by *sim-cycle* windows.

    Samples are bucketed into fixed windows of ``window`` sim-cycles:
    sample at cycle ``c`` lands in window ``c // window``. Aggregation
    within a window is ``sum`` (counter-like), ``max`` (gauge-like), or
    ``hist`` (fixed-edge bucket counts per window, for rolling
    p50/p95/p99). All three merge associatively and commutatively --
    windows are combined index-wise with the scalar merge rule -- so
    serial, ``--jobs N``, and cache-replay sweeps produce byte-identical
    merged series. ``window``, ``agg``, and (for ``hist``) ``edges`` are
    part of the metric's identity, like histogram edges.

    Windows must be keyed by sim-cycles, never wall-clock (the
    ``tel-window-simtime`` lint rule enforces call sites).
    """

    __slots__ = ("window", "agg", "edges", "windows")

    def __init__(
        self,
        window: int,
        agg: str = "sum",
        edges: tuple[float, ...] | None = None,
    ) -> None:
        if not isinstance(window, int) or window < 1:
            raise TelemetryError(
                f"series window must be a positive int, got {window!r}"
            )
        if agg not in SERIES_AGGS:
            raise TelemetryError(
                f"series agg must be one of {SERIES_AGGS}, got {agg!r}"
            )
        if (edges is not None) != (agg == "hist"):
            raise TelemetryError(
                "series edges are required for agg='hist' and forbidden "
                f"otherwise (agg={agg!r}, edges={edges!r})"
            )
        if edges is not None and (
            not edges
            or list(edges) != sorted(edges)
            or len(set(edges)) != len(edges)
        ):
            raise TelemetryError(
                f"series edges must be strictly increasing, got {edges!r}"
            )
        self.window = window
        self.agg = agg
        self.edges = tuple(edges) if edges is not None else None
        # window index -> float (sum/max) or bucket-count list (hist)
        self.windows: dict[int, Any] = {}

    def record(self, cycle: int, value: float = 1) -> None:
        index = cycle // self.window
        windows = self.windows
        if self.agg == "hist":
            edges = self.edges
            assert edges is not None
            counts = windows.get(index)
            if counts is None:
                counts = windows[index] = [0] * (len(edges) + 1)
            for i, edge in enumerate(edges):
                if value <= edge:
                    counts[i] += 1
                    break
            else:
                counts[-1] += 1
        elif self.agg == "sum":
            windows[index] = windows.get(index, 0) + value
        else:  # max
            current = windows.get(index)
            if current is None or value > current:
                windows[index] = value

    def window_quantiles(
        self, qs: tuple[float, ...] = (0.5, 0.95, 0.99)
    ) -> list[tuple[int, dict[str, float]]]:
        """Per-window quantiles for a ``hist`` series, sorted by index."""
        if self.agg != "hist":
            raise TelemetryError(
                f"window_quantiles requires agg='hist', not {self.agg!r}"
            )
        assert self.edges is not None
        return [
            (index, quantiles_from_counts(self.edges, self.windows[index], qs))
            for index in sorted(self.windows)
        ]

    def snapshot(self) -> Snapshot:
        snap: Snapshot = {
            "type": "series",
            "window": self.window,
            "agg": self.agg,
            "windows": [
                [index, self.windows[index]] for index in sorted(self.windows)
            ],
        }
        if self.edges is not None:
            snap["edges"] = list(self.edges)
        return snap

    def _check_identity(
        self, window: int, agg: str, edges: tuple[float, ...] | None
    ) -> None:
        if (
            window != self.window
            or agg != self.agg
            or (tuple(edges) if edges is not None else None) != self.edges
        ):
            raise TelemetryError(
                "series identity mismatch: registered "
                f"(window={self.window}, agg={self.agg!r}, "
                f"edges={self.edges}), requested "
                f"(window={window}, agg={agg!r}, edges={edges})"
            )

    def merge(self, other: Snapshot) -> None:
        self._check_identity(
            other["window"],
            other["agg"],
            tuple(other["edges"]) if "edges" in other else None,
        )
        windows = self.windows
        if self.agg == "hist":
            width = len(cast(tuple[float, ...], self.edges)) + 1
            for index, counts in other["windows"]:
                mine = windows.get(index)
                if mine is None:
                    mine = windows[index] = [0] * width
                for i, count in enumerate(counts):
                    mine[i] += count
        elif self.agg == "sum":
            for index, value in other["windows"]:
                windows[index] = windows.get(index, 0) + value
        else:  # max
            for index, value in other["windows"]:
                current = windows.get(index)
                if current is None or value > current:
                    windows[index] = value

    def reset(self) -> None:
        self.windows.clear()


#: Any concrete metric a registry can hold.
Metric = Counter | Gauge | Histogram | Series


class MetricsRegistry:
    """A named collection of metrics, hierarchical by dot-separated name."""

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def _get(
        self,
        name: str,
        kind: type[Metric],
        factory: Callable[[], Metric],
    ) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif type(metric) is not kind:
            raise TelemetryError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return cast(Counter, self._get(name, Counter, Counter))

    def gauge(self, name: str) -> Gauge:
        return cast(Gauge, self._get(name, Gauge, Gauge))

    def histogram(self, name: str, edges: tuple[float, ...]) -> Histogram:
        histogram = cast(
            Histogram, self._get(name, Histogram, lambda: Histogram(edges))
        )
        if histogram.edges != tuple(edges):
            raise TelemetryError(
                f"histogram {name!r} already registered with edges "
                f"{histogram.edges}, requested {tuple(edges)}"
            )
        return histogram

    def series(
        self,
        name: str,
        window: int,
        agg: str = "sum",
        edges: tuple[float, ...] | None = None,
    ) -> Series:
        series = cast(
            Series,
            self._get(name, Series, lambda: Series(window, agg, edges)),
        )
        series._check_identity(window, agg, edges)
        return series

    # -- serialization and merging ---------------------------------------

    def snapshot(self) -> dict[str, Snapshot]:
        """Plain JSON-able dict of every metric, keys sorted."""
        return {
            name: self._metrics[name].snapshot()
            for name in sorted(self._metrics)
        }

    def merge(self, snapshot: dict[str, Snapshot] | None) -> None:
        """Fold a :meth:`snapshot` dict into this registry.

        Merging is associative and commutative (counters sum, gauges max,
        histograms add bucket-wise), so any grouping of per-cell snapshots
        -- serial, ``--jobs N``, or cache replay -- yields the same merged
        registry.
        """
        if not snapshot:
            return
        makers = {"counter": self.counter, "gauge": self.gauge}
        for name in sorted(snapshot):
            entry = snapshot[name]
            kind = entry["type"]
            if kind == "histogram":
                metric = self.histogram(name, tuple(entry["edges"]))
            elif kind == "series":
                metric = self.series(
                    name,
                    entry["window"],
                    entry["agg"],
                    tuple(entry["edges"]) if "edges" in entry else None,
                )
            else:
                try:
                    metric = makers[kind](name)
                except KeyError:
                    raise TelemetryError(
                        f"unknown metric type {kind!r} for {name!r}"
                    ) from None
            metric.merge(entry)

    def reset(self) -> None:
        """Zero every metric, keeping names and histogram edges."""
        for metric in self._metrics.values():
            metric.reset()

    def clear(self) -> None:
        """Forget every metric."""
        self._metrics.clear()


#: Fixed bucket edges for the per-access eviction-chain depth histogram
#: (in banks moved). Fixed here -- not derived from data -- so the series
#: diffs cleanly across runs and merges across processes (DESIGN.md §9).
CHAIN_DEPTH_EDGES = (0, 1, 2, 3, 4, 6, 8, 12, 16)

#: Fixed bucket edges for queueing/blocked-cycle histograms.
WAIT_CYCLE_EDGES = (0, 1, 2, 4, 8, 16, 32, 64, 128)

#: Fixed bucket edges for fault recovery-latency histograms (extra cycles
#: a message spent in timeout + backoff + retransmission before arriving).
RECOVERY_LATENCY_EDGES = (0, 16, 32, 64, 128, 256, 512, 1024, 2048)

#: Fixed bucket edges for rolling transaction-latency SLO series
#: (p50/p95/p99 per window). Spans protocol-paced hits (~tens of cycles)
#: through saturated chained misses; fixed so windows merge bucket-wise.
LATENCY_SLO_EDGES = (
    16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 1536,
    2048, 3072,
)

#: Fixed bucket edges for per-transaction latency-breakdown leg
#: histograms (injection-queueing / serialization / hop-traversal /
#: bank-service / memory cycles).
SPAN_CYCLE_EDGES = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


_global = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide registry that batch runs merge into."""
    return _global


def reset_global_metrics() -> None:
    """Forget every process-wide metric (tests; fresh CLI invocations)."""
    _global.clear()
