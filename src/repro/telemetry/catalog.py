"""Static telemetry-key catalog (GENERATED -- do not edit by hand).

Every metric/series key pattern the tree can emit, extracted by
``repro.analysis.catalog`` from the emitting packages. ``*`` is a
wildcard for a dynamic fragment (node ids, tenant names, ports).
Regenerate after adding or renaming a key::

    repro lint --write-catalog

The ``cat-stale`` lint rule fails when this file and the tree disagree;
``repro report --check-schema`` diffs runtime snapshots against it.
"""

from __future__ import annotations

import re

#: key pattern -> metric kinds registered under it.
CATALOG: dict[str, tuple[str, ...]] = {
    "cache.bank.busy_cycles": ("counter",),
    "cache.bank.grants": ("counter",),
    "cache.bank.wait_cycles": ("counter",),
    "cache.bankset.boundary_moves": ("counter",),
    "cache.bankset.eviction_chain_depth": ("histogram",),
    "cache.bankset.hits": ("counter",),
    "cache.bankset.hits_mru": ("counter",),
    "cache.bankset.misses": ("counter",),
    "cache.bankset.writebacks": ("counter",),
    "cache.memory.reads": ("counter",),
    "cache.memory.writebacks": ("counter",),
    "cache.partial_tags.early_misses": ("counter",),
    "cache.replacement.dirty_evictions": ("counter",),
    "cache.replacement.fills": ("counter",),
    "cache.series.accesses": ("series",),
    "cache.series.bank_cycles": ("series",),
    "cache.series.hits": ("series",),
    "cache.series.latency": ("series",),
    "cache.series.memory_cycles": ("series",),
    "cache.series.network_cycles": ("series",),
    "cache.span.*": ("histogram",),
    "cache.txn.degraded_accesses": ("counter",),
    "faults.abandoned_messages": ("counter",),
    "faults.exhausted_retries": ("counter",),
    "faults.filtered_destinations": ("counter",),
    "faults.injected": ("counter",),
    "faults.link_drops": ("counter",),
    "faults.recovered_messages": ("counter",),
    "faults.recovery_latency": ("histogram",),
    "faults.rejected_packets": ("counter",),
    "faults.rerouted_packets": ("counter",),
    "faults.retries": ("counter",),
    "faults.timeouts": ("counter",),
    "faults.transient_corruptions": ("counter",),
    "faults.transient_drops": ("counter",),
    "faults.unroutable_destinations": ("counter",),
    "noc.buffer.max_occupancy": ("gauge",),
    "noc.hub.issue_queue_depth": ("gauge",),
    "noc.inject_queue.max_depth.*": ("gauge",),
    "noc.link.busy_cycles.*->*": ("counter",),
    "noc.link.flits.*->*": ("counter",),
    "noc.link.grants.*->*": ("counter",),
    "noc.link.wait_cycles.*->*": ("counter",),
    "noc.network.cycles": ("counter",),
    "noc.network.flits_dropped": ("counter",),
    "noc.network.flits_injected": ("counter",),
    "noc.network.max_latency": ("gauge",),
    "noc.network.packets_delivered": ("counter",),
    "noc.network.packets_injected": ("counter",),
    "noc.network.packets_lost": ("counter",),
    "noc.reroute.detour_hops": ("counter",),
    "noc.router.buffer_bypass_hits": ("counter",),
    "noc.router.channel_busy_cycles": ("counter",),
    "noc.router.flits_ejected": ("counter",),
    "noc.router.flits_forwarded": ("counter",),
    "noc.router.multicast_replica_blocked_cycles": ("counter",),
    "noc.router.replication_blocked.*": ("counter",),
    "noc.router.replications": ("counter",),
    "noc.router.speculative_switch_wins": ("counter",),
    "noc.router.switch_conflicts": ("counter",),
    "noc.router.vc_alloc_failures": ("counter",),
    "noc.router.vc_alloc_wait_cycles": ("counter",),
    "noc.series.flits_ejected": ("series",),
    "noc.series.flits_forwarded": ("series",),
    "noc.series.flits_injected": ("series",),
    "noc.series.latency": ("series",),
    "noc.series.packets_delivered": ("series",),
    "noc.spike.queue_wait_cycles": ("counter",),
    "noc.spike.queue_waits": ("counter",),
    "noc.traversal.hop_cycles": ("counter",),
    "noc.traversal.queue_cycles": ("counter",),
    "noc.traversal.serialization_cycles": ("counter",),
    "noc.vc.credit_stall_cycles.*->*.vc*": ("counter",),
    "noc.vc.max_occupancy.*.*.vc*": ("gauge",),
    "sim.kernel.event_queue_high_water": ("gauge",),
    "sim.kernel.events_executed": ("counter",),
    "stream.admitted": ("counter",),
    "stream.completed": ("counter",),
    "stream.offered": ("counter",),
    "stream.queue.high_water": ("gauge",),
    "stream.rejected.*": ("counter",),
    "stream.series.admitted": ("series",),
    "stream.series.completed": ("series",),
    "stream.series.latency": ("series",),
    "stream.series.offered": ("series",),
    "stream.series.queue_depth": ("series",),
    "stream.series.rejected": ("series",),
    "stream.series.tenant.*.completed": ("series",),
    "stream.series.tenant.*.latency": ("series",),
    "stream.series.tenant.*.offered": ("series",),
    "stream.series.tenant.*.rejected": ("series",),
    "stream.tenant.*.*": ("counter",),
}


def _pattern_regex(pattern: str) -> "re.Pattern[str]":
    parts = [re.escape(part) for part in pattern.split("*")]
    return re.compile("^" + "(.+?)".join(parts) + "$")


_WILDCARDS: list[tuple["re.Pattern[str]", str]] | None = None


def covers(key: str) -> tuple[str, ...] | None:
    """Kinds of the catalog pattern covering *key*, or None."""
    exact = CATALOG.get(key)
    if exact is not None:
        return exact
    global _WILDCARDS
    if _WILDCARDS is None:
        _WILDCARDS = [
            (_pattern_regex(pattern), pattern)
            for pattern in CATALOG
            if "*" in pattern
        ]
    for regex, pattern in _WILDCARDS:
        if regex.match(key):
            return CATALOG[pattern]
    return None


def unknown_keys(snapshot: dict[str, object]) -> list[str]:
    """Snapshot keys not covered by any catalog pattern, sorted."""
    return sorted(key for key in snapshot if covers(key) is None)
