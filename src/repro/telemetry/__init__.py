"""Simulator-wide observability: metrics, structured tracing, provenance.

Three cooperating pieces (see DESIGN.md §9):

* :mod:`repro.telemetry.registry` -- hierarchical counters, gauges, and
  fixed-bucket histograms that every simulator layer publishes into;
* :mod:`repro.telemetry.trace` -- opt-in per-flit / per-transaction
  lifecycle event sinks (JSONL or Perfetto-loadable Chrome trace), with a
  no-op :class:`~repro.telemetry.trace.NullSink` fast path;
* :mod:`repro.telemetry.provenance` -- the deterministic provenance block
  stamped into every result payload.

Everything is deterministic by construction: sim-time stamps, fixed
histogram edges, sorted serialization -- two identical runs produce
byte-identical artifacts, and per-cell metric snapshots merge to the same
totals whether cells ran serially, in a worker pool, or from the cache.
"""

from repro.telemetry.provenance import provenance_block
from repro.telemetry.registry import (
    CHAIN_DEPTH_EDGES,
    LATENCY_SLO_EDGES,
    SERIES_AGGS,
    SPAN_CYCLE_EDGES,
    WAIT_CYCLE_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Series,
    global_registry,
    quantiles_from_counts,
    reset_global_metrics,
)
from repro.telemetry.trace import (
    NULL_SINK,
    TRACE_FORMATS,
    ChromeTraceSink,
    JsonlTraceSink,
    NullSink,
    TraceSink,
    current_sink,
    open_sink,
    set_sink,
)


def merge_run(result: object) -> None:
    """Fold one run's metrics snapshot into the process-wide registry.

    Safe on results that predate telemetry (no ``metrics`` attribute) and
    on cells whose snapshot is ``None``.
    """
    snapshot = getattr(result, "metrics", None)
    if snapshot:
        global_registry().merge(snapshot)


__all__ = [
    "CHAIN_DEPTH_EDGES",
    "LATENCY_SLO_EDGES",
    "SERIES_AGGS",
    "SPAN_CYCLE_EDGES",
    "WAIT_CYCLE_EDGES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Series",
    "global_registry",
    "quantiles_from_counts",
    "reset_global_metrics",
    "NULL_SINK",
    "TRACE_FORMATS",
    "ChromeTraceSink",
    "JsonlTraceSink",
    "NullSink",
    "TraceSink",
    "current_sink",
    "open_sink",
    "set_sink",
    "provenance_block",
    "merge_run",
]
