"""Run provenance: what exactly produced a result payload.

A provenance block pins a result to the source tree (the same
content-addressed fingerprint the persistent result cache keys on), the
package version, the interpreter, and -- when a cell specification is
given -- every model knob of the run. Two payloads with equal provenance
blocks were produced by identical code on identical inputs, so any
numeric difference between them is a real nondeterminism bug.

Deliberately excluded: wall-clock timestamps, hostnames, and process ids.
Provenance must be a pure function of (code, spec) so that serial,
parallel, and cache-replayed evaluations of one cell carry bit-identical
blocks (the engine's determinism tests compare whole payloads).
"""

from __future__ import annotations

import dataclasses
import platform
from typing import Any


def provenance_block(spec: Any = None, **extra: object) -> dict[str, Any]:
    """Build the provenance dict for one run (or one batch when no spec).

    *spec* is a :class:`~repro.experiments.runner.CellSpec` (or any
    dataclass); its fields are embedded verbatim. Keyword *extra* entries
    are merged in (batch-level context such as jobs counts).
    """
    from repro import __version__
    from repro.experiments.cache import CACHE_FORMAT, code_fingerprint

    block = {
        "source_fingerprint": code_fingerprint(),
        "cache_format": CACHE_FORMAT,
        "package_version": __version__,
        "python": platform.python_version(),
    }
    if spec is not None:
        block["spec"] = {
            f.name: getattr(spec, f.name) for f in dataclasses.fields(spec)
        }
        for key in ("seed", "scheme", "design", "benchmark"):
            if key in block["spec"]:
                block[key] = block["spec"][key]
    block.update(extra)
    return block
