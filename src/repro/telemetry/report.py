"""Explore a ``--metrics-out`` file: time series, heatmap, breakdown.

``repro report <metrics.json>`` renders the registry snapshot a sweep
wrote with ``--metrics-out`` (or the newest such file in a directory)
into three views:

- per-window time-series tables of every ``Series`` metric (sampled
  with ``--window N``), with rolling p50/p95/p99 for histogram series;
- a mesh congestion heatmap built from the per-link counters
  (``noc.link.busy_cycles.(r, c)->(r', c')`` and friends) -- ASCII art
  when the nodes are mesh coordinates, a top-links table always;
- a latency breakdown summarizing the ``cache.span.*`` leg histograms
  (injection queueing / serialization / hop traversal / bank / memory).

Everything here is a pure function of the snapshot dict, so the same
file renders identically anywhere. ``write_png`` is the one optional
extra: it draws the heatmap and series with matplotlib when (and only
when) the host happens to have it -- there is no hard dependency.
"""

from __future__ import annotations

import ast
import json
import pathlib
from typing import Any

from repro.errors import TelemetryError
from repro.telemetry.registry import quantiles_from_counts

#: Per-link counter families that can seed the heatmap, in preference
#: order: occupancy first (transaction model), raw flit counts last
#: (flit cores).
HEATMAP_METRICS = (
    "noc.link.busy_cycles",
    "noc.link.grants",
    "noc.link.wait_cycles",
    "noc.link.flits",
)

#: Low-to-high intensity ramp for the ASCII heatmap.
_INTENSITY = " .:-=+*#%@"

#: Windows shown per series in the text view before eliding the middle.
_MAX_WINDOW_ROWS = 24


# -- loading -----------------------------------------------------------------


def load_metrics(path: str | pathlib.Path) -> dict[str, Any]:
    """Registry snapshot from a ``--metrics-out`` file or run directory.

    Accepts either the CLI's ``{"metrics": ..., "provenance": ...}``
    payload or a bare registry snapshot. For a directory, scans its
    ``*.json`` files (sorted by name) and uses the last one that parses
    to a snapshot.
    """
    target = pathlib.Path(path)
    if target.is_dir():
        found = None
        for candidate in sorted(target.glob("*.json")):
            try:
                found = _coerce_snapshot(
                    json.loads(candidate.read_text(encoding="utf-8"))
                )
            except (ValueError, TelemetryError):
                continue
        if found is None:
            raise TelemetryError(
                f"no metrics JSON found in directory {target}; expected a "
                "file written by --metrics-out"
            )
        return found
    return _coerce_snapshot(json.loads(target.read_text(encoding="utf-8")))


def _coerce_snapshot(data: Any) -> dict[str, Any]:
    if isinstance(data, dict) and isinstance(data.get("metrics"), dict):
        data = data["metrics"]
    if not isinstance(data, dict) or not all(
        isinstance(value, dict) and "type" in value for value in data.values()
    ):
        raise TelemetryError(
            "not a metrics snapshot: expected a --metrics-out payload or a "
            "registry snapshot dict"
        )
    return data


# -- extraction (pure snapshot -> JSON-able report) --------------------------


def _parse_node(text: str) -> Any:
    """``"(3, 4)"`` -> ``(3, 4)``; anything unparseable stays a string."""
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def extract_series(metrics: dict[str, Any]) -> dict[str, Any]:
    """Every ``Series`` snapshot, with quantiles for histogram series."""
    out: dict[str, Any] = {}
    for name in sorted(metrics):
        snap = metrics[name]
        if snap.get("type") != "series":
            continue
        entry: dict[str, Any] = {
            "window": snap["window"],
            "agg": snap["agg"],
        }
        if snap["agg"] == "hist":
            edges = snap["edges"]
            entry["windows"] = [
                {
                    "index": index,
                    "start": index * snap["window"],
                    "count": sum(counts),
                    **quantiles_from_counts(edges, counts),
                }
                for index, counts in snap["windows"]
            ]
        else:
            entry["windows"] = [
                {
                    "index": index,
                    "start": index * snap["window"],
                    "value": value,
                }
                for index, value in snap["windows"]
            ]
        out[name] = entry
    return out


def extract_heatmap(
    metrics: dict[str, Any], metric: str | None = None
) -> dict[str, Any] | None:
    """Per-link loads and, for int-pair meshes, a dense per-node grid.

    Node load is the sum over a node's *outgoing* links, the standard
    router-load proxy. Returns None when the snapshot has no per-link
    counters at all (e.g. a run without network instrumentation).
    """
    families = (metric,) if metric else HEATMAP_METRICS
    links: list[dict[str, Any]] = []
    chosen = None
    for family in families:
        prefix = f"{family}."
        for name in sorted(metrics):
            if not name.startswith(prefix):
                continue
            src_text, _, dst_text = name[len(prefix):].partition("->")
            links.append(
                {
                    "src": src_text,
                    "dst": dst_text,
                    "value": metrics[name]["value"],
                }
            )
        if links:
            chosen = family
            break
    if chosen is None:
        return None
    node_load: dict[str, int] = {}
    for link in links:
        node_load[link["src"]] = node_load.get(link["src"], 0) + link["value"]
    report: dict[str, Any] = {
        "metric": chosen,
        "links": sorted(
            links, key=lambda e: (-e["value"], e["src"], e["dst"])
        ),
        "node_load": {key: node_load[key] for key in sorted(node_load)},
    }
    grid = _mesh_grid(node_load)
    if grid is not None:
        report["grid"] = grid
    return report


def _mesh_grid(node_load: dict[str, int]) -> dict[str, Any] | None:
    """Dense (rows x cols) value grid when every node is an int pair."""
    coords: dict[tuple[int, int], int] = {}
    for text, value in node_load.items():
        node = _parse_node(text)
        if not (
            isinstance(node, tuple)
            and len(node) == 2
            and all(isinstance(part, int) for part in node)
        ):
            return None
        coords[node] = value
    if not coords:
        return None
    rows = max(node[0] for node in coords) + 1
    cols = max(node[1] for node in coords) + 1
    values = [
        [coords.get((row, col), 0) for col in range(cols)]
        for row in range(rows)
    ]
    return {"rows": rows, "cols": cols, "values": values}


def extract_breakdown(metrics: dict[str, Any]) -> dict[str, Any]:
    """Summary stats for every ``cache.span.*`` latency-leg histogram."""
    out: dict[str, Any] = {}
    for name in sorted(metrics):
        if not name.startswith("cache.span."):
            continue
        snap = metrics[name]
        count = snap["count"]
        out[name.removeprefix("cache.span.")] = {
            "count": count,
            "total": snap["total"],
            "mean": snap["total"] / count if count else 0.0,
            **quantiles_from_counts(snap["edges"], snap["counts"]),
        }
    return out


def explore(metrics: dict[str, Any]) -> dict[str, Any]:
    """The full structured report (the ``--format json`` payload)."""
    return {
        "series": extract_series(metrics),
        "heatmap": extract_heatmap(metrics),
        "breakdown": extract_breakdown(metrics),
    }


# -- text rendering ----------------------------------------------------------


def _render_series(series: dict[str, Any]) -> list[str]:
    if not series:
        return ["no windowed series recorded (rerun with --window N)"]
    lines: list[str] = []
    for name, entry in series.items():
        windows = entry["windows"]
        lines.append(
            f"{name}  (window={entry['window']} cycles, agg={entry['agg']}, "
            f"{len(windows)} windows)"
        )
        shown = windows
        elided = 0
        if len(windows) > _MAX_WINDOW_ROWS:
            half = _MAX_WINDOW_ROWS // 2
            shown = windows[:half] + windows[-half:]
            elided = len(windows) - len(shown)
        for i, row in enumerate(shown):
            if elided and i == len(shown) // 2:
                lines.append(f"    ... {elided} windows elided ...")
            if entry["agg"] == "hist":
                lines.append(
                    f"    @{row['start']:>8}  n={row['count']:<6} "
                    f"p50={row['p50']:<6g} p95={row['p95']:<6g} "
                    f"p99={row['p99']:g}"
                )
            else:
                lines.append(f"    @{row['start']:>8}  {row['value']}")
        lines.append("")
    return lines[:-1]


def _render_heatmap(heatmap: dict[str, Any] | None) -> list[str]:
    if heatmap is None:
        return ["no per-link counters in this snapshot"]
    lines = [f"per-node load from {heatmap['metric']} (outgoing-link sum)"]
    grid = heatmap.get("grid")
    if grid is not None:
        peak = max(max(row) for row in grid["values"]) or 1
        top = len(_INTENSITY) - 1
        lines.append(
            f"{grid['rows']}x{grid['cols']} mesh, peak node load {peak} "
            f"(scale '{_INTENSITY}')"
        )
        for row in grid["values"]:
            lines.append(
                "  " + "".join(_INTENSITY[value * top // peak] for value in row)
            )
    lines.append("hottest links:")
    for link in heatmap["links"][:10]:
        lines.append(f"  {link['src']}->{link['dst']}  {link['value']}")
    return lines


def _render_breakdown(breakdown: dict[str, Any]) -> list[str]:
    if not breakdown:
        return ["no cache.span.* leg histograms in this snapshot"]
    lines = [
        f"{'leg':<20} {'count':>8} {'mean':>8} {'p50':>6} {'p95':>6} {'p99':>6}"
    ]
    for leg, stats in sorted(
        breakdown.items(), key=lambda item: -item[1]["total"]
    ):
        lines.append(
            f"{leg:<20} {stats['count']:>8} {stats['mean']:>8.2f} "
            f"{stats['p50']:>6g} {stats['p95']:>6g} {stats['p99']:>6g}"
        )
    return lines


def render_text(report: dict[str, Any]) -> str:
    sections = (
        ("Windowed series", _render_series(report["series"])),
        ("Congestion heatmap", _render_heatmap(report["heatmap"])),
        ("Latency breakdown (cycles)", _render_breakdown(report["breakdown"])),
    )
    lines: list[str] = []
    for title, body in sections:
        lines += [title, "=" * len(title)]
        lines += body
        lines.append("")
    return "\n".join(lines[:-1])


# -- optional matplotlib export ----------------------------------------------


def write_png(report: dict[str, Any], path: str | pathlib.Path) -> bool:
    """Draw the heatmap + series to *path*; False if matplotlib is absent."""
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        return False
    heatmap = report["heatmap"]
    series = report["series"]
    figure, axes = plt.subplots(
        1 + bool(series), 1, figsize=(8, 5 + 3 * bool(series))
    )
    axes = axes if isinstance(axes, (list, tuple)) or hasattr(axes, "__len__") \
        else [axes]
    grid = (heatmap or {}).get("grid")
    if grid is not None:
        image = axes[0].imshow(grid["values"], cmap="inferno")
        axes[0].set_title(f"node load ({heatmap['metric']})")
        figure.colorbar(image, ax=axes[0])
    else:
        axes[0].set_axis_off()
        axes[0].set_title("no mesh grid in snapshot")
    if series:
        for name, entry in series.items():
            windows = entry["windows"]
            xs = [row["start"] for row in windows]
            ys = [
                row["p95"] if entry["agg"] == "hist" else row["value"]
                for row in windows
            ]
            label = name + (" p95" if entry["agg"] == "hist" else "")
            axes[1].plot(xs, ys, marker=".", label=label)
        axes[1].set_xlabel("sim cycle")
        axes[1].legend(fontsize=7)
        axes[1].set_title("windowed series")
    figure.tight_layout()
    figure.savefig(str(path), dpi=120)
    plt.close(figure)
    return True
