"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class TopologyError(ReproError):
    """A topology was constructed or queried inconsistently."""


class RoutingError(ReproError):
    """A routing function could not produce a legal output channel."""


class SimulationError(ReproError):
    """The simulation kernel was driven into an illegal state."""


class ProtocolError(ReproError):
    """A cache-protocol invariant was violated during simulation."""


class TraceError(ReproError):
    """A workload trace is malformed or could not be generated."""


class TelemetryError(ReproError):
    """The telemetry layer was configured or driven inconsistently."""


class ValidationError(ReproError):
    """A validation invariant was violated during a checked run."""
