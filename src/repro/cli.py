"""Command-line interface: ``python -m repro <command>``.

Commands
--------
run       simulate one (design, scheme, benchmark) cell and report
figure    regenerate Figure 7, 8, or 9
table     regenerate Table 1, 2, 3, or 4
headline  the abstract-level combined claims
layout    the Fig.-10 halo floorplan
energy    energy report + on-demand gating for one cell
report    regenerate every table and figure into one document
cmp       multi-core shared-L2 scaling (future-work extension)
snuca     S-NUCA vs D-NUCA baseline comparison
faults    seeded fault-injection campaign (resilience curves)
serve     open-loop streaming service with rolling SLO telemetry
trace     generate a synthetic trace file
validate  invariant checkers + differential oracle (+ --fuzz N)
lint      determinism & process-safety static analysis (+ --types gate)
"""

from __future__ import annotations

import argparse
import sys

from repro.core.designs import DESIGN_NAMES
from repro.core.flows import FIGURE8_SCHEMES
from repro.experiments import (
    fig10_layout,
    figure7,
    figure8,
    figure9,
    headline,
    table1_params,
    table2_workloads,
    table3_designs,
    table4_area,
)
from repro.experiments.common import BENCHMARK_NAMES, ExperimentConfig
from repro.noc.network import CORES
from repro.stream.arrivals import MIX_NAMES
from repro.stream.service import ADMISSION_POLICIES


def _config(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        measure=args.measure,
        seed=args.seed,
        core=getattr(args, "core", "object"),
        window=getattr(args, "window", 0),
    )


def cmd_run(args: argparse.Namespace) -> str:
    from repro.workloads import profile_by_name

    profile = profile_by_name(args.benchmark)
    system = None
    if args.early_miss:
        # Early-miss statistics live on the system object, which the
        # engine's cached RunResults do not carry -- simulate directly.
        from repro.core.system import NetworkedCacheSystem
        from repro.workloads import TraceGenerator

        trace, warmup = TraceGenerator(
            profile, seed=args.seed
        ).generate_with_warmup(measure=args.measure)
        system = NetworkedCacheSystem(
            design=args.design, scheme=args.scheme, early_miss_detection=True
        )
        result = system.run(trace, profile, warmup=warmup)
        from repro.telemetry import merge_run

        merge_run(result)
    else:
        from repro.experiments.common import run_system

        result = run_system(args.design, args.scheme, args.benchmark, _config(args))
    shares = result.breakdown_fractions()
    lines = [
        f"design {result.design}, scheme {result.scheme}, "
        f"benchmark {args.benchmark}",
        f"accesses {result.accesses}, cycles {result.cycles}",
        f"hit rate {result.hit_rate:.1%} "
        f"(MRU {result.latency.mru_hit_fraction():.0%})",
        f"latency avg {result.average_latency:.1f} "
        f"(hit {result.average_hit_latency:.1f}, "
        f"miss {result.average_miss_latency:.1f})",
        f"split network {shares['network']:.0%} / bank {shares['bank']:.0%} "
        f"/ memory {shares['memory']:.0%}",
        f"IPC {result.ipc:.3f} ({result.ipc / profile.perfect_l2_ipc:.0%} of "
        f"perfect {profile.perfect_l2_ipc})",
    ]
    if system is not None and system.partial_tags is not None:
        lines.append(
            f"early misses {system.partial_tags.early_misses} "
            f"({system.partial_tags.early_miss_rate:.0%} of lookups)"
        )
    return "\n".join(lines)


def cmd_figure(args: argparse.Namespace) -> str:
    config = _config(args)
    if args.number == 7:
        return figure7.render(figure7.run(config))
    if args.number == 8:
        return figure8.render(figure8.run(config))
    if args.number == 9:
        return figure9.render(figure9.run(config))
    if args.number == 10:
        return fig10_layout.render(fig10_layout.run())
    raise SystemExit(f"no figure {args.number}; choose 7, 8, 9, or 10")


def cmd_table(args: argparse.Namespace) -> str:
    config = _config(args)
    if args.number == 1:
        return table1_params.render(table1_params.run())
    if args.number == 2:
        return table2_workloads.render(table2_workloads.run(config))
    if args.number == 3:
        return table3_designs.render(table3_designs.run())
    if args.number == 4:
        return table4_area.render(table4_area.run())
    raise SystemExit(f"no table {args.number}; choose 1-4")


def _check_schema(snapshot: dict) -> str:
    """Diff a runtime metrics snapshot against the static key catalog.

    Every runtime key must be covered by a cataloged pattern with a
    matching kind; an uncovered key means the catalog (and therefore
    the DESIGN.md schema tables) is missing an emit site -- regenerate
    with ``repro lint --write-catalog`` and re-document.
    """
    from repro.telemetry import catalog

    unknown: list[str] = []
    drifted: list[str] = []
    for key in sorted(snapshot):
        kinds = catalog.covers(key)
        if kinds is None:
            unknown.append(key)
            continue
        payload = snapshot[key]
        kind = payload.get("type") if isinstance(payload, dict) else None
        if kind is not None and kind not in kinds:
            drifted.append(f"{key} is {kind}, catalog says {'/'.join(kinds)}")
    lines = []
    for key in unknown:
        lines.append(f"schema: {key} not covered by any catalog pattern")
    for problem in drifted:
        lines.append(f"schema: kind mismatch: {problem}")
    if lines:
        lines.append(
            f"schema check FAILED ({len(unknown)} unknown key(s), "
            f"{len(drifted)} kind mismatch(es)); regenerate with "
            "`repro lint --write-catalog`"
        )
        raise SystemExit("\n".join(lines))
    return (
        f"schema check ok: {len(snapshot)} runtime keys covered by the "
        "static catalog"
    )


def cmd_report(args: argparse.Namespace) -> str:
    if args.check_schema and not args.metrics:
        raise SystemExit("--check-schema needs a metrics file or directory")
    if args.metrics:
        import json

        from repro.telemetry import report as metrics_report

        snapshot = metrics_report.load_metrics(args.metrics)
        if args.check_schema:
            return _check_schema(snapshot)
        report = metrics_report.explore(snapshot)
        lines = []
        if args.png:
            if metrics_report.write_png(report, args.png):
                lines.append(f"heatmap PNG written to {args.png}")
            else:
                lines.append(
                    f"matplotlib not installed; skipped PNG {args.png}"
                )
        if args.format == "json":
            lines.append(json.dumps(report, indent=2, sort_keys=True))
        else:
            lines.append(metrics_report.render_text(report))
        return "\n".join(lines)

    from repro.experiments import full_report

    path = full_report.write(
        args.out,
        _config(args),
        progress=lambda title: print(f"... {title}", flush=True),
    )
    return f"report written to {path}"


def cmd_cmp(args: argparse.Namespace) -> str:
    from repro.experiments import cmp_scaling

    points = cmp_scaling.run(
        designs=tuple(args.designs),
        core_counts=tuple(args.cores),
        measure=args.measure,
        seed=args.seed,
    )
    return cmp_scaling.render(points)


def cmd_snuca(args: argparse.Namespace) -> str:
    from repro.core.static_system import StaticNUCASystem
    from repro.core.system import NetworkedCacheSystem
    from repro.workloads import TraceGenerator, profile_by_name

    profile = profile_by_name(args.benchmark)
    trace, warmup = TraceGenerator(profile, seed=args.seed).generate_with_warmup(
        measure=args.measure
    )
    snuca = StaticNUCASystem(design=args.design).run(trace, profile, warmup=warmup)
    dnuca = NetworkedCacheSystem(
        design=args.design, scheme="multicast+fast_lru"
    ).run(trace, profile, warmup=warmup)
    from repro.telemetry import merge_run

    merge_run(snuca)
    merge_run(dnuca)
    return "\n".join(
        [
            f"benchmark {args.benchmark}, design {args.design}",
            f"  S-NUCA  lat {snuca.average_latency:7.1f} "
            f"(hit {snuca.average_hit_latency:.1f})  IPC {snuca.ipc:.3f}",
            f"  D-NUCA  lat {dnuca.average_latency:7.1f} "
            f"(hit {dnuca.average_hit_latency:.1f})  IPC {dnuca.ipc:.3f}",
            f"  D-NUCA speedup x{dnuca.ipc / snuca.ipc:.2f}",
        ]
    )


def cmd_trace(args: argparse.Namespace) -> str:
    from repro.workloads import TraceGenerator, profile_by_name
    from repro.workloads.traceio import save_trace

    profile = profile_by_name(args.benchmark)
    trace = TraceGenerator(profile, seed=args.seed).generate(args.measure)
    save_trace(trace, args.output)
    return (
        f"wrote {len(trace)} accesses ({trace.write_count} writes, "
        f"{trace.distinct_blocks()} distinct blocks) to {args.output}"
    )


def cmd_validate(args: argparse.Namespace) -> str:
    from repro.validation import fuzz, run_oracle

    if getattr(args, "profile_phases", False):
        from repro.noc.arraycore import HAVE_NUMPY
        from repro.perf import profiler

        cores = ("object", "array") if HAVE_NUMPY else ("object",)
        return "\n".join(
            profiler.profile_load(core, seed=args.seed).render()
            for core in cores
        )
    if args.fuzz:
        report = fuzz(args.fuzz, seed=args.seed)
        if not report.ok:
            raise SystemExit(report.render())
        return report.summary_line()

    lines = []
    measure = min(args.measure, 600)
    for design, scheme in (
        ("A", "multicast+fast_lru"),
        ("B", "multicast+fast_lru"),
        ("F", "unicast+lru"),
    ):
        oracle = run_oracle(
            design=design,
            scheme=scheme,
            benchmark=args.benchmark,
            measure=measure,
            seed=args.seed,
            sample=args.sample,
            core=getattr(args, "core", "object"),
        )
        if not oracle.ok:
            raise SystemExit(oracle.render())
        lines.append(oracle.summary_line())
    smoke = fuzz(12, seed=args.seed)
    if not smoke.ok:
        raise SystemExit(smoke.render())
    lines.append(smoke.summary_line())
    return "\n".join(lines)


def cmd_faults(args: argparse.Namespace) -> str:
    from repro.experiments import fault_sweep
    from repro.faults.campaign import CampaignConfig

    config = CampaignConfig(
        designs=tuple(args.designs),
        schemes=tuple(args.schemes),
        benchmark=args.benchmark,
        rates=tuple(args.rate),
        measure=args.accesses,
        seed=args.seed,
        fault_seed=args.fault_seed if args.fault_seed is not None else args.seed,
        core=getattr(args, "core", "object"),
    )
    return fault_sweep.render(fault_sweep.run(config))


def _render_serve_cell(spec, result) -> str:
    """Summary + rolling per-window SLO table of one streaming cell."""
    from repro.telemetry.registry import (
        LATENCY_SLO_EDGES,
        MetricsRegistry,
        quantiles_from_counts,
    )

    summary = result.summary
    lines = [
        f"design {spec.design}, policy {spec.scheme}, mix {spec.benchmark}, "
        f"load x{spec.load:g}, {spec.cycles} cycles, seed {spec.seed}, "
        f"core {spec.core}",
        f"offered {result.offered}, admitted {result.admitted} "
        f"(availability {result.availability:.1%}), rejected "
        f"{result.rejected} ({result.rejection_rate:.1%}), completed "
        f"{result.completed}",
        f"goodput {result.goodput_per_kcycle:.2f} req/kcycle, latency "
        f"p50 {result.quantiles['p50']:.0f} / p95 "
        f"{result.quantiles['p95']:.0f} / p99 "
        f"{result.quantiles['p99']:.0f} cycles, queue high-water "
        f"{summary['queue_high_water']}",
    ]
    for name in sorted(summary["tenants"]):
        stats = summary["tenants"][name]
        lines.append(
            f"  tenant {name}: offered {stats['offered']}, rejected "
            f"{stats['rejected']}, completed {stats['completed']}"
        )
    registry = MetricsRegistry()
    registry.merge(result.metrics)
    window = spec.window
    latency = registry.series(
        "stream.series.latency", window, "hist", LATENCY_SLO_EDGES
    )
    offered = dict(
        registry.series("stream.series.offered", window).windows
    )
    completed = dict(
        registry.series("stream.series.completed", window).windows
    )
    rejected = dict(
        registry.series("stream.series.rejected", window).windows
    )
    rows = latency.window_quantiles()
    lines.append("")
    lines.append(
        f"{'window':>8} {'offered':>8} {'completed':>9} {'rejected':>8} "
        f"{'p50':>6} {'p95':>6} {'p99':>6}"
    )
    limit = 16
    for index, qs in rows[:limit]:
        lines.append(
            f"{index * window:>8} {offered.get(index, 0):>8} "
            f"{completed.get(index, 0):>9} {rejected.get(index, 0):>8} "
            f"{qs['p50']:>6.0f} {qs['p95']:>6.0f} {qs['p99']:>6.0f}"
        )
    if len(rows) > limit:
        lines.append(f"... {len(rows) - limit} more windows")
    return "\n".join(lines)


def cmd_serve(args: argparse.Namespace) -> str:
    from repro.experiments import stream_sweep
    from repro.experiments.runner import run_cells
    from repro.stream import stream_spec_for

    window = args.window if args.window > 0 else 64
    core = getattr(args, "core", "object")
    if args.sweep:
        config = stream_sweep.StreamSweepConfig(
            design=args.design,
            mix=args.mix,
            loads=tuple(args.sweep),
            cycles=args.cycles,
            seed=args.seed,
            queue_limit=args.queue_limit,
            max_outstanding=args.outstanding,
            token_rate=args.token_rate,
            token_burst=args.token_burst,
            core=core,
            window=window,
        )
        out = stream_sweep.render(config, stream_sweep.run_sweep(config))
    else:
        spec = stream_spec_for(
            args.design,
            args.policy,
            args.mix,
            seed=args.seed,
            cycles=args.cycles,
            load=args.load,
            queue_limit=args.queue_limit,
            max_outstanding=args.outstanding,
            token_rate=args.token_rate,
            token_burst=args.token_burst,
            core=core,
            window=window,
            drain=not args.no_drain,
        )
        out = _render_serve_cell(spec, run_cells([spec])[0])
    if args.metrics_out:
        # Write the serve payload here (metrics + provenance only): the
        # generic main() payload includes the batch journal, whose wall
        # times would break the byte-identical-metrics guarantee.
        import json

        from repro import telemetry

        payload = {
            "metrics": telemetry.global_registry().snapshot(),
            "provenance": telemetry.provenance_block(),
        }
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"metrics written to {args.metrics_out}", file=sys.stderr)
        args.metrics_out = None
    return out


def cmd_lint(args: argparse.Namespace) -> str:
    import json

    from repro.analysis import analyze_paths, render_findings
    from repro.analysis.__main__ import list_rules, write_catalog
    from repro.analysis.baseline import BASELINE_NAME, check_baseline
    from repro.analysis.sarif import render_sarif
    from repro.analysis.typegate import check_typegate

    if args.list_rules:
        return list_rules()
    if args.write_catalog:
        return f"wrote {write_catalog(args.paths)}"
    findings = analyze_paths(args.paths)
    baseline_path = args.baseline
    if args.update_lint_baseline and baseline_path is None:
        baseline_path = BASELINE_NAME
    lines: list[str] = []
    if baseline_path is not None:
        baseline_report = check_baseline(
            findings, baseline_path, update=args.update_lint_baseline
        )
        visible = baseline_report.offenders
        failed = not baseline_report.ok or bool(baseline_report.stale)
        if args.format == "text":
            lines.append(baseline_report.render())
    else:
        visible = findings
        failed = bool(findings)
        if args.format == "text":
            lines.append(render_findings(findings))
    if args.format == "json":
        lines.append(json.dumps([f.payload() for f in visible],
                                indent=2, sort_keys=True))
    elif args.format == "sarif":
        lines.append(render_sarif(visible).rstrip("\n"))
    if args.types or args.update_baseline:
        report = check_typegate(update_baseline=args.update_baseline)
        lines.append(report.render())
        failed = failed or not report.ok
    text = "\n".join(lines)
    if failed:
        raise SystemExit(text)
    return text


def cmd_headline(args: argparse.Namespace) -> str:
    return headline.render(headline.run(_config(args)))


def cmd_layout(args: argparse.Namespace) -> str:
    return fig10_layout.render(fig10_layout.run())


def cmd_energy(args: argparse.Namespace) -> str:
    from repro.core.system import NetworkedCacheSystem
    from repro.power import EnergyMeter, GatingPolicy, simulate_gating
    from repro.workloads import TraceGenerator, profile_by_name

    profile = profile_by_name(args.benchmark)
    trace, warmup = TraceGenerator(profile, seed=args.seed).generate_with_warmup(
        measure=args.measure
    )
    system = NetworkedCacheSystem(design=args.design, scheme=args.scheme)
    result = system.run(trace, profile, warmup=warmup)
    from repro.telemetry import merge_run

    merge_run(result)
    report = EnergyMeter().measure(system, result)
    gating = simulate_gating(
        system, result, GatingPolicy(idle_threshold=args.gate_threshold)
    )
    fractions = report.fractions()
    return "\n".join(
        [
            f"design {args.design}, scheme {args.scheme}, "
            f"benchmark {args.benchmark}",
            f"energy {report.pj_per_access:.0f} pJ/access "
            f"({report.total_pj / 1e6:.2f} uJ total)",
            f"  bank {fractions['bank']:.0%}, router {fractions['router']:.0%}, "
            f"link {fractions['link']:.0%}, memory {fractions['memory']:.0%}, "
            f"leakage {fractions['leakage']:.0%}",
            f"gating @ idle>{args.gate_threshold}: "
            f"{gating.gated_fraction:.0%} of bank area off, "
            f"net {gating.net_saving_pj / 1e6:+.2f} uJ, "
            f"+{gating.average_latency_penalty:.2f} cyc/access wake penalty",
        ]
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'A Domain-Specific On-Chip Network Design for "
            "Large Scale Cache Systems' (HPCA 2007)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--measure", type=int, default=3000,
                       help="measured accesses per cell (default 3000)")
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for independent cells "
                            "(0 = all cores; default 1 = serial)")
        p.add_argument("--no-cache", action="store_true",
                       help="disable the persistent on-disk result cache")
        p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="result cache location (default .repro-cache, "
                            "or $REPRO_CACHE_DIR)")
        p.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write the merged telemetry metrics, run "
                            "provenance, and batch journal as JSON")
        p.add_argument("--trace", default=None, metavar="PATH",
                       help="record per-flit/per-transaction lifecycle "
                            "events (forces --jobs 1 and --no-cache)")
        p.add_argument("--trace-format", choices=("jsonl", "chrome"),
                       default="jsonl",
                       help="trace encoding: jsonl lines or a Chrome "
                            "trace_event file loadable in Perfetto")
        p.add_argument("--core", choices=CORES,
                       default="object",
                       help="flit-simulation core: the reference object "
                            "model, the struct-of-arrays core "
                            "(bit-identical, much faster; NumPy-"
                            "vectorized sweeps when available), or the "
                            "same core with its scalar sweeps pinned")
        p.add_argument("--window", type=int, default=0, metavar="N",
                       help="sample windowed metric series every N "
                            "sim-cycles (0 = off); series appear in "
                            "--metrics-out and feed `repro report`")

    run = sub.add_parser("run", help="simulate one configuration")
    run.add_argument("--design", choices=DESIGN_NAMES, default="A")
    run.add_argument("--scheme", choices=FIGURE8_SCHEMES,
                     default="multicast+fast_lru")
    run.add_argument("--benchmark", choices=BENCHMARK_NAMES, default="twolf")
    run.add_argument("--early-miss", action="store_true",
                     help="enable partial-tag early miss detection")
    common(run)
    run.set_defaults(handler=cmd_run)

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("number", type=int, choices=(7, 8, 9, 10))
    common(figure)
    figure.set_defaults(handler=cmd_figure)

    table = sub.add_parser("table", help="regenerate a paper table")
    table.add_argument("number", type=int, choices=(1, 2, 3, 4))
    common(table)
    table.set_defaults(handler=cmd_table)

    head = sub.add_parser("headline", help="abstract-level combined claims")
    common(head)
    head.set_defaults(handler=cmd_headline)

    layout = sub.add_parser("layout", help="Fig.-10 halo floorplan")
    common(layout)
    layout.set_defaults(handler=cmd_layout)

    energy = sub.add_parser("energy", help="energy + gating report")
    energy.add_argument("--design", choices=DESIGN_NAMES, default="A")
    energy.add_argument("--scheme", choices=FIGURE8_SCHEMES,
                        default="multicast+fast_lru")
    energy.add_argument("--benchmark", choices=BENCHMARK_NAMES, default="twolf")
    energy.add_argument("--gate-threshold", type=int, default=2000)
    common(energy)
    energy.set_defaults(handler=cmd_energy)

    report = sub.add_parser(
        "report",
        help="regenerate every artifact into one file, or explore a "
             "--metrics-out snapshot",
        description=(
            "Without an argument: regenerate every table and figure into "
            "--out. With a metrics file (or run directory) written by "
            "--metrics-out: render its windowed time series, a mesh "
            "congestion heatmap from the per-link counters, and the "
            "cache.span.* latency breakdown."
        ),
    )
    report.add_argument("metrics", nargs="?", default=None,
                        help="a --metrics-out JSON file or a directory "
                             "containing one (omit for the full artifact "
                             "regeneration)")
    report.add_argument("--format", choices=("text", "json"), default="text",
                        help="explorer output: human tables/ASCII heatmap "
                             "or the structured JSON report")
    report.add_argument("--check-schema", action="store_true",
                        help="diff the snapshot's keys against the static "
                             "telemetry catalog (repro.telemetry.catalog) "
                             "instead of rendering; nonzero exit on "
                             "unknown keys or kind mismatches")
    report.add_argument("--png", default=None, metavar="PATH",
                        help="also draw the heatmap + series with "
                             "matplotlib when it is installed (skipped "
                             "with a notice otherwise)")
    report.add_argument("--out", default="results.txt")
    common(report)
    report.set_defaults(handler=cmd_report)

    cmp_cmd = sub.add_parser("cmp", help="multi-core shared-L2 scaling")
    cmp_cmd.add_argument("--designs", nargs="+", choices=DESIGN_NAMES,
                         default=["A", "F"])
    cmp_cmd.add_argument("--cores", nargs="+", type=int, default=[1, 2, 4])
    common(cmp_cmd)
    cmp_cmd.set_defaults(handler=cmd_cmp)

    snuca = sub.add_parser("snuca", help="S-NUCA vs D-NUCA comparison")
    snuca.add_argument("--design", choices=DESIGN_NAMES, default="A")
    snuca.add_argument("--benchmark", choices=BENCHMARK_NAMES, default="art")
    common(snuca)
    snuca.set_defaults(handler=cmd_snuca)

    faults = sub.add_parser(
        "faults",
        help="seeded fault-injection campaign (resilience curves)",
        description=(
            "Sweep a fault-severity rate (permanent link sampling rate and "
            "per-traversal transient rate) across designs and schemes; "
            "report availability, goodput, and latency degradation per "
            "point. The zero-rate baseline is always included."
        ),
    )
    faults.add_argument("--rate", type=float, nargs="+", default=[1e-3],
                        metavar="R",
                        help="fault rate(s) to sweep (default 1e-3)")
    faults.add_argument("--accesses", type=int, default=600, metavar="N",
                        help="measured accesses per cell (default 600)")
    faults.add_argument("--designs", nargs="+", choices=DESIGN_NAMES,
                        default=["A", "C", "F"])
    faults.add_argument("--schemes", nargs="+", choices=FIGURE8_SCHEMES,
                        default=["multicast+fast_lru"])
    faults.add_argument("--benchmark", choices=BENCHMARK_NAMES, default="art")
    faults.add_argument("--fault-seed", type=int, default=None,
                        help="fault-plan sampling seed (default: --seed)")
    common(faults)
    faults.set_defaults(handler=cmd_faults)

    serve = sub.add_parser(
        "serve",
        help="open-loop streaming service with rolling SLO telemetry",
        description=(
            "Serve multi-tenant open-loop request streams (Zipf content, "
            "Poisson/bursty/diurnal arrivals) through the flit-level "
            "fabric with bounded admission queues, and report rolling "
            "per-window p50/p95/p99 latency, goodput, rejection rate, "
            "and availability via the windowed Series telemetry. "
            "--window defaults to 64 cycles here (SLO series need one). "
            "With --sweep L1 L2 ...: run the offered-load x admission-"
            "policy overload grid through the experiment engine instead."
        ),
    )
    serve.add_argument("--design", choices=DESIGN_NAMES, default="C")
    serve.add_argument("--mix", choices=MIX_NAMES, default="duo-bursty",
                       help="named tenant mix (default duo-bursty)")
    serve.add_argument("--policy", choices=ADMISSION_POLICIES,
                       default="drop-tail",
                       help="admission control at the hub issue port")
    serve.add_argument("--cycles", type=int, default=4000, metavar="N",
                       help="open-loop cycle budget (default 4000)")
    serve.add_argument("--load", type=float, default=1.0, metavar="X",
                       help="offered-load multiplier on the mix's "
                            "calibrated rates (default 1.0)")
    serve.add_argument("--queue-limit", type=int, default=32, metavar="N",
                       help="admission queue bound (default 32)")
    serve.add_argument("--outstanding", type=int, default=8, metavar="N",
                       help="max in-flight transactions (default 8)")
    serve.add_argument("--token-rate", type=float, default=0.12,
                       metavar="R",
                       help="token-bucket refill per cycle (default 0.12)")
    serve.add_argument("--token-burst", type=float, default=8.0,
                       metavar="B",
                       help="token-bucket capacity (default 8.0)")
    serve.add_argument("--no-drain", action="store_true",
                       help="stop at the cycle budget without draining "
                            "in-flight transactions")
    serve.add_argument("--sweep", type=float, nargs="+", default=None,
                       metavar="LOAD",
                       help="sweep these load multipliers across both "
                            "admission policies through run_cells")
    common(serve)
    serve.set_defaults(handler=cmd_serve)

    validate = sub.add_parser(
        "validate",
        help="run the invariant checkers and differential oracle",
        description=(
            "Without --fuzz: differentially validate representative cells "
            "(engine path vs checked replay vs flit-level re-enactment) and "
            "run a short fuzz smoke. With --fuzz N: run N seeded fuzz cases "
            "over random geometries, bank-set shapes, and traces; failures "
            "are shrunk to minimal ready-to-paste pytest repros."
        ),
    )
    validate.add_argument("--fuzz", type=int, default=0, metavar="N",
                          help="run N fuzz cases instead of the oracle suite")
    validate.add_argument("--benchmark", choices=BENCHMARK_NAMES,
                          default="art")
    validate.add_argument("--sample", type=int, default=3,
                          help="transactions re-enacted at flit level per "
                               "oracle cell (default 3)")
    validate.add_argument("--profile-phases", action="store_true",
                          help="instead of validating, wall-time-profile "
                               "the flit cores' cycle phases (arrivals / "
                               "inject / replication / switch) under the "
                               "standard load and print the breakdown")
    common(validate)
    validate.set_defaults(handler=cmd_validate)

    trace = sub.add_parser("trace", help="generate a synthetic trace file")
    trace.add_argument("--benchmark", choices=BENCHMARK_NAMES, default="twolf")
    trace.add_argument("--output", required=True)
    common(trace)
    trace.set_defaults(handler=cmd_trace)

    lint = sub.add_parser(
        "lint",
        help="determinism & process-safety static analysis",
        description=(
            "Run the custom AST rule suite (determinism, process safety, "
            "telemetry hygiene, exception discipline; see DESIGN.md §12) "
            "over the tree. Findings are suppressed per line with "
            "`# repro: allow[rule-id] -- justification`; the justification "
            "is mandatory. With --types, also run the mypy --strict "
            "typed-core gate against the ratcheted mypy-baseline.txt."
        ),
    )
    lint.add_argument("paths", nargs="*", default=["src/repro"],
                      help="files or directories to analyze "
                           "(default: src/repro)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print every registered rule and exit")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text",
                      help="finding output format (default: text); sarif "
                           "is what GitHub code scanning ingests")
    lint.add_argument("--baseline", metavar="FILE", default=None,
                      help="judge findings against a shrink-only "
                           "lint-baseline.txt ratchet instead of failing "
                           "on any finding")
    lint.add_argument("--update-lint-baseline", action="store_true",
                      help="rewrite the lint baseline from this run's "
                           "findings")
    lint.add_argument("--write-catalog", action="store_true",
                      help="regenerate src/repro/telemetry/catalog.py "
                           "(the static telemetry-key catalog) and exit")
    lint.add_argument("--types", action="store_true",
                      help="also run the mypy --strict typed-core gate "
                           "(skipped with a notice when mypy is absent)")
    lint.add_argument("--update-baseline", action="store_true",
                      help="rewrite mypy-baseline.txt from a fresh mypy run")
    lint.set_defaults(handler=cmd_lint)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not hasattr(args, "jobs"):
        # Tooling subcommands (lint) take no engine/telemetry options.
        print(args.handler(args))
        return 0
    from repro import telemetry
    from repro.experiments import runner

    jobs = args.jobs
    use_cache = not args.no_cache
    sink = None
    if args.trace:
        sink = telemetry.open_sink(args.trace, args.trace_format)
        if jobs != 1 or use_cache:
            print(
                "note: --trace forces --jobs 1 and --no-cache (worker "
                "processes and cache replays produce no trace events)",
                file=sys.stderr,
            )
        jobs = 1
        use_cache = False
    runner.configure(
        jobs=jobs,
        use_cache=use_cache,
        cache_dir=args.cache_dir,
    )
    previous = telemetry.set_sink(sink) if sink is not None else None
    try:
        print(args.handler(args))
    finally:
        if sink is not None:
            telemetry.set_sink(previous)
            sink.close()
    batch = runner.last_batch()
    if batch is not None:
        print(batch.summary(), file=sys.stderr)
    if args.metrics_out:
        import json

        payload = {
            "metrics": telemetry.global_registry().snapshot(),
            "provenance": telemetry.provenance_block(),
            "journal": runner.journal_payload(),
        }
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"metrics written to {args.metrics_out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
