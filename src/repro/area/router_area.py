"""Router area: flit buffers + crossbar (Section 6.3, after Gold [11]).

The two analytically driven components are

* the crossbar, growing with ``input ports x output ports x flit width``;
* the input flit buffers, growing with ``ports x VCs x depth x flit width``.

The per-bit constants are calibrated so that the paper's two data points
hold: the full 5-port router of Design A occupies ~0.461 mm^2 (20.8 % of
567.7 mm^2 over 256 routers), and the 3-port simplified router is 48 % of
it (Design B's router area: 240 simplified + 16 full routers = 60.5 mm^2
vs. the paper's 60.4). Designs E/F use 3-port spike routers, matching
Table 4's 56.7 / 17.8 mm^2 exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import FLIT_BUFFER_DEPTH, FLIT_SIZE_BITS, VCS_PER_PC
from repro.errors import ConfigurationError

#: mm^2 per crosspoint-bit of crossbar (wiring dominated).
CROSSBAR_MM2_PER_BIT = 0.009213 / FLIT_SIZE_BITS
#: mm^2 per buffered bit (SRAM cell + control overhead).
BUFFER_MM2_PER_BIT = 0.04619 / (VCS_PER_PC * FLIT_BUFFER_DEPTH * FLIT_SIZE_BITS)


@dataclass(frozen=True)
class RouterAreaModel:
    """Analytic router area at 65 nm."""

    flit_size_bits: int = FLIT_SIZE_BITS
    num_vcs: int = VCS_PER_PC
    buffer_depth: int = FLIT_BUFFER_DEPTH
    crossbar_mm2_per_bit: float = CROSSBAR_MM2_PER_BIT
    buffer_mm2_per_bit: float = BUFFER_MM2_PER_BIT

    def __post_init__(self) -> None:
        if self.flit_size_bits <= 0 or self.num_vcs <= 0 or self.buffer_depth <= 0:
            raise ConfigurationError("router parameters must be positive")

    def crossbar_area(self, in_ports: int, out_ports: int | None = None) -> float:
        """Crossbar area for an ``in x out`` switch."""
        if out_ports is None:
            out_ports = in_ports
        if in_ports <= 0 or out_ports <= 0:
            raise ConfigurationError("port counts must be positive")
        return self.crossbar_mm2_per_bit * in_ports * out_ports * self.flit_size_bits

    def buffer_area(self, in_ports: int) -> float:
        """Input buffer area: every PC holds VCs x depth flits."""
        if in_ports <= 0:
            raise ConfigurationError("port counts must be positive")
        bits = in_ports * self.num_vcs * self.buffer_depth * self.flit_size_bits
        return self.buffer_mm2_per_bit * bits

    def router_area(self, ports: int) -> float:
        """Total area of a symmetric *ports*-port router."""
        return self.crossbar_area(ports) + self.buffer_area(ports)

    @property
    def full_router_area(self) -> float:
        """The 5-port mesh router (4 neighbors + inject/eject)."""
        return self.router_area(5)

    @property
    def simplified_router_area(self) -> float:
        """The 3-port router left after removing horizontal links
        (Section 4): up, down, and local ports only."""
        return self.router_area(3)

    @property
    def simplification_ratio(self) -> float:
        """3-port vs. 5-port area (the paper quotes 48 %)."""
        return self.simplified_router_area / self.full_router_area
