"""Area and wire-delay models behind Tables 1 and 4 (65 nm).

* :mod:`repro.area.wire` -- first-order RC wire delay under optimal
  repeater insertion; reproduces Table 1's per-bank-size wire delays;
* :mod:`repro.area.cacti` -- Cacti-3.0-style bank area/latency model
  calibrated to the paper's bank areas and Table-1 access latencies;
* :mod:`repro.area.router_area` -- flit-buffer + crossbar router area
  (Gold's analytic model, calibrated to the paper's 5-port router and its
  48 %-area 3-port simplification);
* :mod:`repro.area.floorplan` -- tile pitch, link area, per-design L2 and
  chip area (Table 4), and the halo layout of Fig. 10.
"""

from repro.area.cacti import BankAreaModel
from repro.area.floorplan import DesignArea, FloorPlanner, halo_layout
from repro.area.router_area import RouterAreaModel
from repro.area.wire import WireModel

__all__ = [
    "WireModel",
    "BankAreaModel",
    "RouterAreaModel",
    "FloorPlanner",
    "DesignArea",
    "halo_layout",
]
