"""First-order RC wire delay with optimal repeater insertion (Section 5).

The paper takes the global-wire latency from the first-order RC model of
Otten & Brayton under optimal repeater insertion at 65 nm, with unit-length
R and C from the ITRS roadmap, and quantizes it to 5 GHz core cycles.

With optimal repeaters the delay grows *linearly* in length:

    t(L) = k * sqrt(tau_0 * r * c) * L

where ``r``/``c`` are per-mm wire resistance/capacitance, ``tau_0`` the
repeater's intrinsic RC, and ``k`` the Bakoglu constant. The defaults are
calibrated so a 64/128/256/512 KB bank tile costs exactly the 1/2/2/3
cycles of Table 1 (about 160 ps/mm), which the test suite pins down.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Core clock of the evaluation platform (Section 5).
CORE_FREQUENCY_GHZ = 5.0


@dataclass(frozen=True)
class WireModel:
    """Repeated global wire at 65 nm."""

    #: Wire resistance per mm (ohms).
    r_per_mm: float = 330.0
    #: Wire capacitance per mm (farads).
    c_per_mm: float = 0.4e-12
    #: Intrinsic repeater RC (seconds).
    repeater_tau: float = 31.0e-12
    #: Bakoglu proportionality constant for optimally repeated wires.
    k: float = 2.5
    frequency_ghz: float = CORE_FREQUENCY_GHZ

    def __post_init__(self) -> None:
        if min(self.r_per_mm, self.c_per_mm, self.repeater_tau, self.k) <= 0:
            raise ConfigurationError("wire parameters must be positive")
        if self.frequency_ghz <= 0:
            raise ConfigurationError("frequency must be positive")

    @property
    def delay_per_mm_ps(self) -> float:
        """Optimally repeated delay per mm, in picoseconds."""
        rc_per_mm2 = self.r_per_mm * self.c_per_mm  # seconds per mm^2
        return self.k * math.sqrt(self.repeater_tau * rc_per_mm2) * 1e12

    def delay_ps(self, length_mm: float) -> float:
        """Wire delay of a repeated wire of *length_mm*, in ps."""
        if length_mm < 0:
            raise ConfigurationError("length must be non-negative")
        return self.delay_per_mm_ps * length_mm

    def cycles(self, length_mm: float) -> int:
        """Delay quantized up to whole core cycles (min 1 for any wire)."""
        if length_mm == 0:
            return 0
        period_ps = 1000.0 / self.frequency_ghz
        return max(1, math.ceil(self.delay_ps(length_mm) / period_ps))

    def unrepeated_delay_ps(self, length_mm: float) -> float:
        """Quadratic (0.38 R C L^2) delay without repeaters, for contrast."""
        if length_mm < 0:
            raise ConfigurationError("length must be non-negative")
        return 0.38 * self.r_per_mm * self.c_per_mm * (length_mm ** 2) * 1e12
