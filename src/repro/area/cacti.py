"""Cacti-3.0-style bank area and latency model (Section 5, Table 1).

Cacti decomposes an SRAM bank into data/tag arrays, decoders, and sense
amps; its area grows slightly sub-linearly with capacity because periphery
is amortized over larger arrays. We model that with a calibrated power law

    area(C) = A64 * (C / 64 KB) ** b

whose exponent reproduces the paper's Table-4 bank areas: a 16 MB cache of
256 x 64 KB banks occupies ~271 mm^2 (47.8 % of Design A's 567.7 mm^2),
while the same capacity in non-uniform banks drops to ~246 mm^2 because
the big banks are denser per byte.

Access latencies come straight from Table 1 (the paper itself tabulates
the Cacti output rather than re-deriving it per experiment).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import BankTiming, supported_bank_capacities
from repro.errors import ConfigurationError

KB = 1024

#: Calibrated 65 nm area of one 64 KB bank (mm^2): 271 mm^2 / 256 banks.
AREA_64KB_MM2 = 1.060
#: Capacity exponent: larger banks amortize periphery (sub-linear).
CAPACITY_EXPONENT = 0.93


@dataclass(frozen=True)
class BankAreaModel:
    """Analytic bank area at 65 nm."""

    area_64kb_mm2: float = AREA_64KB_MM2
    capacity_exponent: float = CAPACITY_EXPONENT

    def __post_init__(self) -> None:
        if self.area_64kb_mm2 <= 0:
            raise ConfigurationError("area_64kb_mm2 must be positive")
        if not 0 < self.capacity_exponent <= 1:
            raise ConfigurationError("capacity_exponent must be in (0, 1]")

    def area_mm2(self, capacity_bytes: int) -> float:
        """Die area of one bank of *capacity_bytes*."""
        if capacity_bytes <= 0:
            raise ConfigurationError("capacity must be positive")
        return self.area_64kb_mm2 * (capacity_bytes / (64 * KB)) ** self.capacity_exponent

    def density_mb_per_mm2(self, capacity_bytes: int) -> float:
        """Storage density of a bank (MB per mm^2); grows with capacity."""
        return capacity_bytes / (1024 * 1024) / self.area_mm2(capacity_bytes)

    @staticmethod
    def access_latency(capacity_bytes: int, replace: bool = False) -> int:
        """Table-1 bank access latency in cycles."""
        timing = BankTiming.for_capacity(capacity_bytes)
        return timing.tag_replace_latency if replace else timing.tag_latency

    @staticmethod
    def supported_capacities() -> tuple[int, ...]:
        return supported_bank_capacities()
