"""Per-design floorplans: Table 4 and the Fig.-10 halo layout.

A tile is a bank plus its router; its side is ``sqrt(bank + router
area)``. A link between adjacent tiles is 256 wires at 1 um pitch
(0.256 mm wide -- one 128-bit flit each direction) and spans the larger of
the two tiles it connects. Wires are not routed over banks, so link area
is real estate (Section 6.3).

Mesh chips are the L2 rectangle itself. Halo chips are the minimal square
around the 4 mm x 4 mm core with spikes radiating outward, which is why
Design E wastes most of its die (uniform 64 KB tiles leave the outer ring
empty) while Design F's growing banks tile the quadrants compactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import sqrt

from repro.area.cacti import BankAreaModel
from repro.area.router_area import RouterAreaModel
from repro.core.designs import DesignSpec
from repro.errors import ConfigurationError
from repro.noc.topology import HaloTopology, Topology

#: Bidirectional link width: 2 x 128 wires at 1 um pitch (Section 6.3).
LINK_WIDTH_MM = 0.256
#: The core die placed at the halo hub (Section 6.3).
CORE_SIDE_MM = 4.0


@dataclass(frozen=True)
class DesignArea:
    """One Table-4 row."""

    design: str
    bank_mm2: float
    router_mm2: float
    link_mm2: float
    chip_mm2: float

    @property
    def l2_mm2(self) -> float:
        return self.bank_mm2 + self.router_mm2 + self.link_mm2

    @property
    def bank_fraction(self) -> float:
        return self.bank_mm2 / self.l2_mm2

    @property
    def router_fraction(self) -> float:
        return self.router_mm2 / self.l2_mm2

    @property
    def link_fraction(self) -> float:
        return self.link_mm2 / self.l2_mm2

    @property
    def network_fraction(self) -> float:
        """Router + link share of the L2 area (52 % for Design A)."""
        return self.router_fraction + self.link_fraction

    def as_row(self) -> dict:
        """Formatted like Table 4."""
        return {
            "design": self.design,
            "bank %": round(100 * self.bank_fraction, 1),
            "router %": round(100 * self.router_fraction, 1),
            "link %": round(100 * self.link_fraction, 1),
            "L2 area (mm2)": round(self.l2_mm2, 2),
            "chip area (mm2)": round(self.chip_mm2, 2),
        }


@dataclass
class FloorPlanner:
    """Computes Table-4 areas for any Table-3 design."""

    bank_model: BankAreaModel = field(default_factory=BankAreaModel)
    router_model: RouterAreaModel = field(default_factory=RouterAreaModel)
    link_width_mm: float = LINK_WIDTH_MM
    core_side_mm: float = CORE_SIDE_MM

    def tile_side(self, capacity_bytes: int, router_ports: int) -> float:
        """Side of the square tile holding a bank and its router."""
        area = self.bank_model.area_mm2(capacity_bytes) + self.router_model.router_area(
            router_ports
        )
        return sqrt(area)

    @staticmethod
    def _router_ports(topology: Topology, node) -> int:
        """Distinct physical neighbors plus the local inject/eject port."""
        neighbors = set(topology.successors(node)) | set(topology.predecessors(node))
        return len(neighbors) + 1

    def design_area(self, spec: DesignSpec) -> DesignArea:
        """Full Table-4 style area accounting for one design."""
        topology = spec.topology_factory()
        geometry = spec.build()

        bank_mm2 = 0.0
        tile_sides: dict = {}
        for column in range(geometry.num_columns):
            for descriptor in geometry.columns[column]:
                node = geometry.bank_node(column, descriptor.position)
                ports = self._router_ports(topology, node)
                bank_mm2 += self.bank_model.area_mm2(descriptor.capacity_bytes)
                tile_sides[node] = self.tile_side(descriptor.capacity_bytes, ports)

        router_mm2 = 0.0
        for node in topology.nodes:
            if node not in tile_sides:
                continue  # the halo hub is part of the cache controller
            router_mm2 += self.router_model.router_area(
                self._router_ports(topology, node)
            )

        link_mm2 = 0.0
        seen = set()
        for channel in topology.channels():
            key = tuple(sorted((channel.src, channel.dst), key=str))
            if key in seen:
                continue
            seen.add(key)
            length = max(
                tile_sides.get(channel.src, 0.0), tile_sides.get(channel.dst, 0.0)
            )
            link_mm2 += self.link_width_mm * length

        l2_mm2 = bank_mm2 + router_mm2 + link_mm2
        if isinstance(topology, HaloTopology):
            chip_mm2 = self._halo_chip_area(spec)
        else:
            chip_mm2 = l2_mm2
        return DesignArea(
            design=spec.key,
            bank_mm2=bank_mm2,
            router_mm2=router_mm2,
            link_mm2=link_mm2,
            chip_mm2=max(chip_mm2, l2_mm2),
        )

    # -- halo geometry ---------------------------------------------------------

    def spike_tile_sides(self, spec: DesignSpec) -> list[float]:
        """Tile sides along one spike, MRU outward (3-port spike routers)."""
        return [
            self.tile_side(capacity, 3) for capacity in spec.bank_capacities
        ]

    def spike_extent(self, spec: DesignSpec) -> float:
        """Radial length of one spike in mm."""
        return sum(self.spike_tile_sides(spec))

    def _halo_chip_area(self, spec: DesignSpec) -> float:
        """Minimal square die: core in the center, spikes radiating out."""
        side = 2.0 * self.spike_extent(spec) + self.core_side_mm
        return side * side


@dataclass(frozen=True)
class SpikeSegment:
    """One bank tile along a halo spike (for Fig.-10 rendering)."""

    position: int
    capacity_bytes: int
    side_mm: float
    start_mm: float

    @property
    def end_mm(self) -> float:
        return self.start_mm + self.side_mm


def halo_layout(spec: DesignSpec, planner: FloorPlanner | None = None) -> dict:
    """Geometry of the Fig.-10 halo floorplan.

    Returns the die side, core side, and per-spike segments (identical for
    all spikes, radial coordinates measured from the core edge).
    """
    if not spec.network.startswith("16-spike"):
        raise ConfigurationError(f"design {spec.key} is not a halo design")
    planner = planner or FloorPlanner()
    sides = planner.spike_tile_sides(spec)
    segments = []
    offset = 0.0
    for position, (capacity, side) in enumerate(zip(spec.bank_capacities, sides)):
        segments.append(
            SpikeSegment(
                position=position,
                capacity_bytes=capacity,
                side_mm=side,
                start_mm=offset,
            )
        )
        offset += side
    die_side = 2.0 * offset + planner.core_side_mm
    return {
        "design": spec.key,
        "die_side_mm": die_side,
        "core_side_mm": planner.core_side_mm,
        "num_spikes": 16,
        "spike_extent_mm": offset,
        "segments": segments,
    }
