#!/usr/bin/env python3
"""Energy analysis and on-demand power gating (future work, Section 7).

Meters a run of each scheme/design pair, splits the energy into bank /
network / memory / leakage, and sweeps the gating policy's idle threshold
to expose the leakage-vs-wake-latency trade-off the paper anticipates.
The multicast caveat shows up directly: delivering the request to every
bank of the set keeps banks warm, so multicast leaves far less leakage
for the gating policy to harvest than a sequential search.
"""

from repro.core.system import NetworkedCacheSystem
from repro.power import EnergyMeter, GatingPolicy, simulate_gating
from repro.workloads import TraceGenerator, profile_by_name


def main() -> None:
    profile = profile_by_name("twolf")
    trace, warmup = TraceGenerator(profile, seed=2).generate_with_warmup(
        measure=3000
    )
    meter = EnergyMeter()

    print("Energy per access by configuration")
    runs = {}
    for design, scheme in (
        ("A", "unicast+fast_lru"),
        ("A", "multicast+fast_lru"),
        ("F", "multicast+fast_lru"),
    ):
        system = NetworkedCacheSystem(design=design, scheme=scheme)
        result = system.run(trace, profile, warmup=warmup)
        report = meter.measure(system, result)
        runs[(design, scheme)] = (system, result)
        fractions = report.fractions()
        print(
            f"  {design}/{scheme:20s} {report.pj_per_access:8.0f} pJ/access  "
            f"bank {fractions['bank']:.0%}, network "
            f"{fractions['router'] + fractions['link']:.0%}, "
            f"memory {fractions['memory']:.0%}, leakage {fractions['leakage']:.0%}"
        )

    print("\nGating threshold sweep (Design A, multicast fast-LRU)")
    system, result = runs[("A", "multicast+fast_lru")]
    for threshold in (200, 1000, 5000, 20000):
        gating = simulate_gating(
            system, result, GatingPolicy(idle_threshold=threshold)
        )
        print(
            f"  idle>{threshold:>6}: {gating.gated_fraction:5.0%} gated, "
            f"net {gating.net_saving_pj / 1e6:+7.2f} uJ, "
            f"+{gating.average_latency_penalty:5.2f} cyc/access"
        )

    print("\nMulticast vs unicast gating opportunity")
    for key in (("A", "unicast+fast_lru"), ("A", "multicast+fast_lru")):
        system, result = runs[key]
        gating = simulate_gating(system, result)
        print(f"  {key[1]:20s} gated fraction {gating.gated_fraction:.0%}")


if __name__ == "__main__":
    main()
