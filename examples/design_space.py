#!/usr/bin/env python3
"""Design-space exploration: performance AND area of Designs A-F.

Mini Fig. 9 + Table 4: runs every Table-3 design under Multicast Fast-LRU
on a few benchmarks and joins the normalized IPC with the floorplan areas,
reproducing the paper's punchline -- the halo with non-uniform banks
(Design F) wins on performance while using a fraction of the mesh's
interconnect area.

Usage: python examples/design_space.py [benchmark ...]
"""

import sys

from repro import DESIGN_NAMES, NetworkedCacheSystem, design_spec, profile_by_name
from repro.area import FloorPlanner
from repro.experiments.common import geometric_mean
from repro.workloads import TraceGenerator


def main(benchmarks: list[str]) -> None:
    planner = FloorPlanner()
    traces = {}
    for name in benchmarks:
        profile = profile_by_name(name)
        traces[name] = (profile,) + TraceGenerator(profile, seed=3).generate_with_warmup(
            measure=3000
        )

    print(f"benchmarks: {', '.join(benchmarks)}  (scheme: multicast+fast_lru)")
    header = (f"{'design':<40} {'norm IPC':>9} {'L2 mm2':>8} "
              f"{'net mm2':>8} {'net %':>6}")
    print(header)
    print("-" * len(header))
    base_ipc = None
    for key in DESIGN_NAMES:
        spec = design_spec(key)
        ipcs = []
        for name in benchmarks:
            profile, trace, warmup = traces[name]
            system = NetworkedCacheSystem(design=key, scheme="multicast+fast_lru")
            ipcs.append(system.run(trace, profile, warmup=warmup).ipc)
        ipc = geometric_mean(ipcs)
        if base_ipc is None:
            base_ipc = ipc
        area = planner.design_area(spec)
        network_mm2 = area.router_mm2 + area.link_mm2
        print(
            f"{key}: {spec.label:<37} {ipc / base_ipc:9.2f} "
            f"{area.l2_mm2:8.1f} {network_mm2:8.1f} "
            f"{area.network_fraction:6.0%}"
        )


if __name__ == "__main__":
    names = sys.argv[1:] or ["art", "twolf", "mcf"]
    main(names)
