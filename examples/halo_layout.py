#!/usr/bin/env python3
"""Compute and render the halo floorplans (Fig. 10).

Prints the spike geometry of Design F (non-uniform banks growing along
each spike), compares the die utilization of Designs E and F, and draws a
coarse ASCII picture of one spike.
"""

from repro.area.floorplan import FloorPlanner, halo_layout
from repro.core.designs import design_e, design_f
from repro.experiments import fig10_layout


def main() -> None:
    results = fig10_layout.run()
    print(fig10_layout.render(results))
    print()

    planner = FloorPlanner()
    for spec in (design_e, design_f):
        layout = halo_layout(spec, planner)
        area = planner.design_area(spec)
        used = area.l2_mm2 + planner.core_side_mm**2
        print(
            f"Design {spec.key}: die {layout['die_side_mm']:.1f} mm square "
            f"({area.chip_mm2:.0f} mm2), L2+core {used:.0f} mm2, "
            f"utilization {used / area.chip_mm2:.0%}"
        )


if __name__ == "__main__":
    main()
