#!/usr/bin/env python3
"""Drive the flit-level multicast router on a small mesh (Section 3.1).

Injects a chain-multicast read request down one column of a 4x4 mesh --
exactly what the cache controller does for a bank-set tag match -- and
prints per-destination delivery times, the replication count, and a
contrast against sending four separate unicast requests. Also verifies
the deadlock-freedom of XY and XYX routing via their channel dependency
graphs.
"""

from repro.noc import (
    MeshTopology,
    MessageType,
    Network,
    Packet,
    SimplifiedMeshTopology,
    XYRouting,
    XYXRouting,
)
from repro.noc.routing import is_deadlock_free


def multicast_demo() -> None:
    mesh = MeshTopology(4, 4)
    network = Network(mesh)
    column = 1
    destinations = tuple((column, y) for y in range(4))
    request = Packet(
        MessageType.READ_REQUEST, source=(2, 0), destinations=destinations
    )
    network.inject(request)
    cycles = network.run_until_drained()
    print(f"multicast request to column {column} (4 banks):")
    for delivery in sorted(network.stats.deliveries, key=lambda d: d.destination):
        print(
            f"  bank {delivery.destination}: delivered at cycle "
            f"{delivery.delivered_at} ({delivery.hops} hops)"
        )
    print(
        f"  drained in {cycles} cycles with "
        f"{network.total_replications()} flit replications "
        f"({network.total_replication_blocked()} blocked cycles)"
    )

    unicast = Network(mesh)
    for destination in destinations:
        unicast.inject(
            Packet(MessageType.READ_REQUEST, source=(2, 0), destinations=(destination,))
        )
    print(f"  4x unicast drains in {unicast.run_until_drained()} cycles")


def deadlock_demo() -> None:
    mesh = MeshTopology(4, 4)
    print(f"XY on full mesh deadlock-free: "
          f"{is_deadlock_free(mesh, XYRouting())}")
    simplified = SimplifiedMeshTopology(4, 4)
    core = simplified.core_attach
    pairs = [(core, node) for node in simplified.nodes if node != core]
    pairs += [(node, core) for node in simplified.nodes if node != core]
    print(f"XYX on simplified mesh deadlock-free (cache traffic): "
          f"{is_deadlock_free(simplified, XYXRouting(), pairs)}")


def main() -> None:
    multicast_demo()
    print()
    deadlock_demo()


if __name__ == "__main__":
    main()
