#!/usr/bin/env python3
"""Quickstart: build the paper's baseline cache and run a workload.

Builds Design A (16x16 mesh of 64 KB banks), runs a synthetic `twolf`
trace under the paper's best scheme (Multicast Fast-LRU), and prints the
latency decomposition, hit statistics, and the modeled IPC.
"""

from repro import NetworkedCacheSystem, profile_by_name
from repro.workloads import TraceGenerator


def main() -> None:
    profile = profile_by_name("twolf")
    trace, warmup = TraceGenerator(profile, seed=42).generate_with_warmup(
        measure=5000
    )

    system = NetworkedCacheSystem(design="A", scheme="multicast+fast_lru")
    result = system.run(trace, profile, warmup=warmup)

    print(f"design          : {result.design} ({system.spec.label})")
    print(f"scheme          : {result.scheme}")
    print(f"benchmark       : {profile.name} "
          f"(perfect-L2 IPC {profile.perfect_l2_ipc})")
    print(f"measured        : {result.accesses} L2 accesses, "
          f"{result.instructions} instructions, {result.cycles} cycles")
    print(f"hit rate        : {result.hit_rate:.1%} "
          f"({result.latency.mru_hit_fraction():.0%} of hits in the MRU bank)")
    print(f"avg latency     : {result.average_latency:.1f} cycles "
          f"(hit {result.average_hit_latency:.1f}, "
          f"miss {result.average_miss_latency:.1f})")
    shares = result.breakdown_fractions()
    print(f"latency split   : network {shares['network']:.0%}, "
          f"bank {shares['bank']:.0%}, memory {shares['memory']:.0%}")
    print(f"IPC             : {result.ipc:.3f} "
          f"({result.ipc / profile.perfect_l2_ipc:.0%} of perfect)")
    print(f"memory traffic  : {result.memory_reads} fills, "
          f"{result.memory_writebacks} write-backs")


if __name__ == "__main__":
    main()
