#!/usr/bin/env python3
"""CMP extension: several cores sharing the networked L2 (future work).

Runs a multiprogrammed mix (one Table-2 benchmark per core) against the
mesh (Design A) and the halo (Design F) at 1, 2, and 4 cores, and reports
throughput, shared-cache latency, and fairness. The halo's hub + spike
queues absorb the multi-core traffic that congests the mesh's top row.
"""

from repro.experiments import cmp_scaling


def main() -> None:
    points = cmp_scaling.run(measure=2000)
    print(cmp_scaling.render(points))
    print()
    by_key = {(p.design, p.num_cores): p for p in points}
    for cores in (1, 2, 4):
        a = by_key[("A", cores)]
        f = by_key[("F", cores)]
        print(
            f"{cores} core(s): halo throughput x{f.aggregate_ipc / a.aggregate_ipc:.2f}, "
            f"latency {f.average_latency / a.average_latency:.0%} of mesh"
        )


if __name__ == "__main__":
    main()
