#!/usr/bin/env python3
"""Compare the five replacement schemes on one benchmark (mini Fig. 8).

Runs {unicast, multicast} x {Promotion, LRU, Fast-LRU} on Design A for a
single benchmark (default: mcf, the most capacity-pressured) and prints
the latency/IPC comparison, showing Fast-LRU's overlap advantage and the
multicast router's parallel tag match.

Usage: python examples/compare_replacement.py [benchmark]
"""

import sys

from repro import FIGURE8_SCHEMES, NetworkedCacheSystem, profile_by_name
from repro.workloads import TraceGenerator


def main(benchmark: str = "mcf") -> None:
    profile = profile_by_name(benchmark)
    trace, warmup = TraceGenerator(profile, seed=7).generate_with_warmup(
        measure=4000
    )

    print(f"benchmark: {benchmark}  (trace: {len(trace)} accesses, "
          f"{warmup} warm-up)")
    header = (f"{'scheme':<22} {'avg lat':>8} {'hit lat':>8} {'miss lat':>9} "
              f"{'hit rate':>9} {'IPC':>7}")
    print(header)
    print("-" * len(header))
    baseline = None
    for scheme in FIGURE8_SCHEMES:
        system = NetworkedCacheSystem(design="A", scheme=scheme)
        result = system.run(trace, profile, warmup=warmup)
        if baseline is None:
            baseline = result.average_latency
        print(
            f"{scheme:<22} {result.average_latency:8.1f} "
            f"{result.average_hit_latency:8.1f} "
            f"{result.average_miss_latency:9.1f} "
            f"{result.hit_rate:9.1%} {result.ipc:7.3f}"
            f"   ({result.average_latency / baseline - 1:+.0%} vs first)"
        )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "mcf")
